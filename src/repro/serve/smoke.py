"""serve-smoke: the end-to-end crash/resume scenario for the job server.

The contract under test is the PR 2 invariant carried across a process
boundary *and* a machine crash: a sweep submitted through
:class:`~repro.serve.client.ServeClient` must return results
byte-identical to a serial local :func:`~repro.exec.engine.run_sweep`
of the same points -- including when the server is SIGKILLed mid-sweep
and restarted on the same store.

Steps (all deterministic; the kill is a one-shot
:mod:`repro.chaos.kill` plan, so it fires exactly once):

1. compute the serial baseline locally;
2. start a real server subprocess with a kill plan armed for the third
   point, submit the sweep, and watch the server die by SIGKILL;
3. restart the server on the same store: the orphaned job requeues, the
   two committed points replay from the store, the rest compute;
4. fetch the results through the client and compare to the baseline
   byte for byte;
5. resubmit the identical sweep: it must dedup onto the finished job
   (zero recomputation) and return the same bytes again.

Used by the CI ``serve-smoke`` job (``python -m repro.serve.smoke``)
and by ``tests/test_serve_chaos.py``.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
from typing import Dict, List, Optional

import repro
from repro.chaos.kill import write_kill_plan
from repro.exec.engine import run_sweep, sweep_points
from repro.serve.client import ServeClient, ServeError


class SmokeFailure(AssertionError):
    """The serve-smoke scenario violated the crash-safety contract."""


def _comparable(results) -> List[dict]:
    rows = []
    for result in results:
        row = result.to_dict()
        row.pop("from_cache", None)
        rows.append(row)
    return rows


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_server(
    store: pathlib.Path, port: int, env: Dict[str, str]
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--store", str(store),
            "--host", "127.0.0.1",
            "--port", str(port),
            "--workers", "1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(
    client: ServeClient, proc: subprocess.Popen, timeout: float = 30.0
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SmokeFailure(
                f"server exited early (rc={proc.returncode})"
            )
        try:
            client.health()
            return
        except ServeError:
            time.sleep(0.1)
    raise SmokeFailure(f"server not healthy within {timeout:g}s")


def run_serve_smoke(
    workdir,
    log=print,
    seed: int = 7,
    warmup_packets: int = 10,
    measure_packets: int = 30,
    kill_point_index: int = 2,
) -> Dict[str, str]:
    """Run the scenario under ``workdir``; returns a step report.

    Raises :class:`SmokeFailure` on any contract violation, so a
    non-zero exit from the CLI means a real crash-safety regression.
    """
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report: Dict[str, str] = {}
    points = sweep_points(
        ["baseline", "center+BL"],
        "uniform_random",
        [0.05, 0.1],
        seed=seed,
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        mesh_size=4,
    )

    log(f"serve-smoke: serial baseline ({len(points)} points)")
    baseline = _comparable(
        run_sweep(points, jobs=1, backend="serial", cache=None,
                  progress=None, telemetry=None, submit=None)
    )
    report["baseline"] = "ok"

    store = workdir / "serve.sqlite"
    port = _free_port()
    client = ServeClient(f"http://127.0.0.1:{port}")
    # Kill plan: the server process SIGKILLs *itself* when its worker
    # starts executing the chosen point.  This smoke process is the
    # protected parent; the one-shot token makes the kill fire exactly
    # once, so the restarted server runs the point normally.
    plan = write_kill_plan(
        workdir / "kill.json",
        [points[kill_point_index]],
        workdir / "kill-tokens",
    )
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["REPRO_CHAOS_KILL"] = str(plan)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # The server must not inherit ambient engine defaults.
    env.pop("REPRO_SWEEP_CACHE", None)
    env.pop("REPRO_JOBS", None)

    log(f"serve-smoke: starting server on :{port} (kill plan armed)")
    proc = _spawn_server(store, port, env)
    try:
        _wait_healthy(client, proc)
        submitted = client.submit(points, tag="serve-smoke")
        job_id = submitted["job_id"]
        log(f"serve-smoke: submitted job {job_id[:12]}..., awaiting SIGKILL")
        try:
            proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            raise SmokeFailure("kill plan never fired; server still alive")
        if proc.returncode != -signal.SIGKILL:
            raise SmokeFailure(
                f"server exited rc={proc.returncode}, expected SIGKILL"
            )
        report["sigkill"] = "ok"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    log("serve-smoke: restarting server on the same store")
    proc = _spawn_server(store, port, env)
    try:
        _wait_healthy(client, proc)
        job = client.wait(job_id, timeout=300)
        if job["state"] != "done":
            raise SmokeFailure(
                f"resumed job finished {job['state']}: {job['error']}"
            )
        progress = job["progress"]
        if progress["committed"] != len(points):
            raise SmokeFailure(
                f"journal shows {progress['committed']}/{len(points)} "
                "committed after resume"
            )
        served = _comparable(client.results(job_id))
        if served != baseline:
            raise SmokeFailure(
                "served results differ from the serial baseline"
            )
        report["resume_bit_identical"] = "ok"
        log("serve-smoke: resumed results byte-identical to baseline")

        resubmit = client.submit(points, tag="serve-smoke")
        if not resubmit["deduped"] or resubmit["job_id"] != job_id:
            raise SmokeFailure("resubmission did not dedup onto the job")
        if _comparable(client.results(job_id)) != baseline:
            raise SmokeFailure("deduped results differ from baseline")
        report["dedup"] = "ok"
        log("serve-smoke: resubmission deduped, zero recomputation")
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    report["shutdown"] = "ok"
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="SIGKILL/resume smoke test for the sweep job server.",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    if args.workdir:
        report = run_serve_smoke(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
            report = run_serve_smoke(tmp)
    for step, status in report.items():
        print(f"  {step}: {status}")
    print("serve-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
