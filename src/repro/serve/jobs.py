"""The persistent priority job queue (store schema v2 ``jobs`` table).

A *job* is one sweep: an ordered list of
:class:`~repro.exec.point.SweepPoint` specs plus queue metadata
(priority, tag, submitting client).  Jobs live in the same SQLite file
as the results they produce, so the queue inherits every durability
property of :class:`~repro.exec.store.ResultStore`: WAL mode, atomic
single-statement transitions, and a 30 s busy timeout that lets many
connections (server loop, worker threads, concurrent processes) share
one file.

Identity is content-addressed: the job id is
:func:`~repro.exec.store.sweep_id_for` over the points and tag, which is
also the id of the job's journal rows.  Submitting the same points twice
therefore *joins* the existing job -- queued, running or done -- instead
of creating a duplicate; only ``failed``/``cancelled`` jobs requeue.

State machine::

    queued --claim--> running --finish--> done | failed
      ^                  |
      |                  +--cancel (cooperative) --> cancelled
      +--requeue_running-- (crash recovery at server startup)

``claim`` is a single ``BEGIN IMMEDIATE`` transaction (highest priority
first, FIFO within a priority), so two workers -- even in different
processes -- can never run the same job.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.point import PointResult, SweepPoint
from repro.exec.store import ResultStore, sweep_id_for

#: every state a jobs-table row can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: states that a resubmission joins rather than requeues.
JOINABLE_STATES = ("queued", "running", "done")

_JOB_COLUMNS = (
    "job_id", "state", "priority", "tag", "client", "submitted_at",
    "started_at", "finished_at", "worker", "error",
)


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def job_id_for(points: Sequence[SweepPoint], tag: Optional[str] = None) -> str:
    """Content-addressed job identity (same digest as the sweep journal)."""
    return sweep_id_for(points, tag)


def points_from_specs(specs: Sequence[dict]) -> List[SweepPoint]:
    """Rebuild the sweep from its serialized spec dicts (validating)."""
    return [SweepPoint(**spec) for spec in specs]


class JobQueue:
    """Priority queue over the ``jobs`` table of a result store.

    Each instance owns (or wraps) one :class:`ResultStore` and therefore
    one SQLite connection; like the store itself, an instance belongs to
    the thread that uses it.
    """

    def __init__(self, store: Union[str, ResultStore]) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)

    # -- submission -----------------------------------------------------------
    def submit(
        self,
        points: Sequence[SweepPoint],
        priority: int = 0,
        tag: Optional[str] = None,
        client: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Enqueue a sweep; returns ``(job_id, deduped)``.

        ``deduped`` is true when an equivalent job already exists in a
        joinable state (queued/running/done) -- the caller simply
        observes that job instead of a new one.  A ``failed`` or
        ``cancelled`` twin is requeued in place (same id, fresh attempt).
        """
        points = list(points)
        if not points:
            raise ValueError("a job needs at least one point")
        job_id = job_id_for(points, tag)
        specs_json = json.dumps([p.spec_dict() for p in points], sort_keys=True)
        keys_json = json.dumps([p.key() for p in points])
        conn = self.store.connection()
        with conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is not None and row[0] in JOINABLE_STATES:
                return job_id, True
            if row is not None:
                conn.execute(
                    "UPDATE jobs SET state = 'queued', priority = ?, "
                    "client = ?, submitted_at = ?, started_at = NULL, "
                    "finished_at = NULL, worker = NULL, error = NULL "
                    "WHERE job_id = ?",
                    (priority, client, _now(), job_id),
                )
            else:
                conn.execute(
                    "INSERT INTO jobs (job_id, state, priority, tag, "
                    "client, points, point_keys, submitted_at) "
                    "VALUES (?, 'queued', ?, ?, ?, ?, ?, ?)",
                    (job_id, priority, tag, client, specs_json,
                     keys_json, _now()),
                )
        # Journal the job's points up front (idempotent), so progress is
        # reportable before a worker ever touches the job and committed
        # points survive any crash.
        self.store.begin_sweep(points, tag=tag)
        return job_id, False

    # -- worker side ----------------------------------------------------------
    def claim(self, worker: str) -> Optional[Dict[str, object]]:
        """Atomically take the best queued job (or ``None`` when idle).

        Best = highest ``priority``, then submission order.  The
        claimed row flips to ``running`` inside one immediate
        transaction, so concurrent claimers get distinct jobs.
        """
        conn = self.store.connection()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, rowid ASC LIMIT 1"
            ).fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "worker = ? WHERE job_id = ?",
                (_now(), worker, row[0]),
            )
            conn.execute("COMMIT")
        except sqlite3.DatabaseError:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.DatabaseError:
                pass
            return None
        return self.get(row[0], include_points=True)

    def finish(
        self, job_id: str, state: str, error: Optional[str] = None
    ) -> None:
        """Move a running job to a terminal state."""
        if state not in ("done", "failed", "cancelled"):
            raise ValueError(f"not a terminal state: {state!r}")
        conn = self.store.connection()
        with conn:
            conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ? "
                "WHERE job_id = ? AND state = 'running'",
                (state, _now(), error, job_id),
            )

    def requeue_running(self) -> int:
        """Crash recovery: put every ``running`` job back in the queue.

        Called once at server startup -- a job can only be ``running``
        then if the previous server was killed mid-sweep.  Points that
        committed before the crash replay from the store, so requeueing
        never recomputes or duplicates work.
        """
        conn = self.store.connection()
        with conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'queued', worker = NULL, "
                "started_at = NULL WHERE state = 'running'"
            )
        return cursor.rowcount

    # -- queries --------------------------------------------------------------
    def get(
        self, job_id: str, include_points: bool = False
    ) -> Optional[Dict[str, object]]:
        """One job as a dict (with journal progress), or ``None``."""
        conn = self.store.connection()
        row = conn.execute(
            "SELECT job_id, state, priority, tag, client, submitted_at, "
            "started_at, finished_at, worker, error, points, point_keys "
            "FROM jobs WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        if row is None:
            return None
        job = dict(zip(_JOB_COLUMNS, row[:10]))
        keys = json.loads(row[11])
        job["num_points"] = len(keys)
        job["point_keys"] = keys
        job["progress"] = self.store.sweep_progress(job_id)
        if include_points:
            job["points"] = json.loads(row[10])
        return job

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Dict[str, object]]:
        """Most-recent-first job summaries, optionally one state only."""
        conn = self.store.connection()
        if state is None:
            rows = conn.execute(
                "SELECT job_id, state, priority, tag, client, "
                "submitted_at, started_at, finished_at, worker, error "
                "FROM jobs ORDER BY rowid DESC LIMIT ?",
                (limit,),
            ).fetchall()
        else:
            rows = conn.execute(
                "SELECT job_id, state, priority, tag, client, "
                "submitted_at, started_at, finished_at, worker, error "
                "FROM jobs WHERE state = ? ORDER BY rowid DESC LIMIT ?",
                (state, limit),
            ).fetchall()
        return [dict(zip(_JOB_COLUMNS, row)) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Row counts per state (the queue-depth metric)."""
        return self.store.job_counts()

    # -- lifecycle ------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a queued job; returns the job's (new) state.

        A ``running`` job is *not* flipped here -- the server signals its
        worker instead (cooperative cancellation between points) -- so
        the return value ``"running"`` means "asked, in progress".
        """
        conn = self.store.connection()
        with conn:
            conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ? "
                "WHERE job_id = ? AND state = 'queued'",
                (_now(), job_id),
            )
            row = conn.execute(
                "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return row[0] if row else None

    def results_for(
        self, job_id: str
    ) -> Optional[List[Optional[PointResult]]]:
        """The job's results in point order (``None`` per missing row)."""
        job = self.get(job_id, include_points=True)
        if job is None:
            return None
        points = points_from_specs(job["points"])
        return [self.store.get(point) for point in points]
