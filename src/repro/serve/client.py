"""Stdlib client for the sweep job server.

:class:`ServeClient` speaks the JSON API of
:class:`~repro.serve.server.SweepServer` over ``http.client`` -- no
dependencies, picklable-free, one connection per request (the server
closes connections after each response anyway).

The high-level call is :meth:`ServeClient.run_sweep`: submit, wait,
fetch -- a drop-in for :func:`repro.exec.engine.run_sweep` that returns
:class:`~repro.exec.point.PointResult` objects bit-identical to local
serial execution.  :func:`install_submit` wires exactly that into the
engine's remote-submission hook, which is how ``run_all --submit <url>``
redirects every harness's sweeps to a shared server.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.exec.engine import _failed_result
from repro.exec.point import PointResult, SweepPoint


class ServeError(RuntimeError):
    """The server answered with an error (or not at all)."""


class ServeClient:
    """Client for one sweep server at ``url`` (e.g. ``http://host:8923``)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        if "//" not in url:
            url = "http://" + url
        split = urlsplit(url)
        if not split.hostname:
            raise ValueError(f"no host in server url {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # -- transport ------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"{method} {path} failed: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            parsed = json.loads(data)
        except ValueError as exc:
            raise ServeError(
                f"{method} {path}: non-JSON response (HTTP {status})"
            ) from exc
        if status >= 400:
            raise ServeError(
                f"{method} {path}: HTTP {status}: "
                f"{parsed.get('error', parsed)}"
            )
        return parsed

    # -- API ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def submit(
        self,
        points: Sequence[SweepPoint],
        priority: int = 0,
        tag: Optional[str] = None,
        client: Optional[str] = None,
    ) -> Dict[str, object]:
        """Enqueue a sweep; returns ``{"job_id", "deduped", "state", ...}``."""
        return self._request("POST", "/jobs", {
            "points": [point.spec_dict() for point in points],
            "priority": priority,
            "tag": tag,
            "client": client,
        })

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> List[dict]:
        path = "/jobs" if state is None else f"/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.2
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its dict."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]}... still {job['state']} after "
                    f"{timeout:g}s "
                    f"({job['progress']['committed']}"
                    f"/{job['progress']['total']} committed)"
                )
            time.sleep(poll_s)

    def results(
        self, job_id: str, points: Optional[Sequence[SweepPoint]] = None
    ) -> List[PointResult]:
        """The job's results in point order.

        Rows the store lacks (points that failed on the server) come
        back as engine-style captured failures -- NaN metrics plus the
        job's error string -- when ``points`` is given, mirroring
        ``run_sweep(on_error="capture")``; without ``points`` a missing
        row raises.
        """
        payload = self._request("GET", f"/jobs/{job_id}/result")
        results: List[PointResult] = []
        for index, row in enumerate(payload["results"]):
            if row is not None:
                results.append(PointResult.from_dict(row))
            elif points is not None:
                results.append(_failed_result(
                    points[index],
                    str(payload.get("error") or f"job {payload['state']}"),
                ))
            else:
                raise ServeError(
                    f"job {job_id[:12]}... has no result for point "
                    f"{index} (state {payload['state']})"
                )
        return results

    def stream_events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[dict]:
        """Follow the job's chunked NDJSON event feed until it ends."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(
                    f"events for {job_id[:12]}...: HTTP {response.status}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def run_sweep(
        self,
        points: Sequence[SweepPoint],
        priority: int = 0,
        tag: Optional[str] = None,
        client: Optional[str] = None,
        timeout: float = 3600.0,
        poll_s: float = 0.2,
    ) -> List[PointResult]:
        """Submit, wait, fetch: the remote twin of engine ``run_sweep``.

        A ``failed`` job still returns per-point results (captured
        failures included), matching ``on_error="capture"`` locally; a
        ``cancelled`` job raises.
        """
        points = list(points)
        submitted = self.submit(
            points, priority=priority, tag=tag, client=client
        )
        job = self.wait(submitted["job_id"], timeout=timeout, poll_s=poll_s)
        if job["state"] == "cancelled":
            raise ServeError(f"job {submitted['job_id'][:12]}... cancelled")
        return self.results(submitted["job_id"], points=points)


def install_submit(url: str, client: Optional[str] = None) -> ServeClient:
    """Route every engine sweep in this process through the server.

    Installs a remote-submission hook via
    :func:`repro.exec.engine.configure`; the engine then ships whole
    sweeps (with its current sweep tag) to the server instead of
    executing locally.  Returns the client; undo with
    ``configure(submit=None)``.
    """
    serve_client = ServeClient(url)

    def _submit(points, tag=None):
        return serve_client.run_sweep(points, tag=tag, client=client)

    from repro.exec.engine import configure

    configure(submit=_submit)
    return serve_client
