"""The always-on sweep job server: queue, server, client, smoke.

Turns the batch sweep engine into a shared service::

    python -m repro.serve --store results.sqlite --port 8923

Many clients submit placement-search and sweep jobs against one durable
store; the server dedups content-addressed work, executes with the
engine's hardening, streams progress, and survives SIGKILL mid-sweep
with zero lost or duplicated points.

* :class:`~repro.serve.jobs.JobQueue` -- the persistent priority queue
  (store schema v2 ``jobs`` table);
* :class:`~repro.serve.server.SweepServer` -- asyncio HTTP/JSON API and
  the worker pool;
* :class:`~repro.serve.client.ServeClient` /
  :func:`~repro.serve.client.install_submit` -- the stdlib client and
  the ``run_all --submit <url>`` hook;
* :func:`~repro.serve.smoke.run_serve_smoke` -- the CI crash/resume
  scenario (serial baseline == served results, across a SIGKILL).
"""

from repro.serve.client import ServeClient, ServeError, install_submit
from repro.serve.jobs import JOB_STATES, JobQueue, job_id_for
from repro.serve.server import SweepServer

__all__ = [
    "JOB_STATES",
    "JobQueue",
    "ServeClient",
    "ServeError",
    "SweepServer",
    "install_submit",
    "job_id_for",
]
