"""The always-on sweep job server.

One process, three kinds of thread:

* the **asyncio loop thread** -- a hand-rolled HTTP/1.1 server on
  ``asyncio`` streams (stdlib only), answering the JSON API below and
  streaming job events as chunked NDJSON;
* **worker threads** -- each claims jobs from the persistent
  :class:`~repro.serve.jobs.JobQueue` and executes their points through
  :func:`repro.exec.engine.run_sweep` (serial backend, per-point
  timeout/retry hardening, chaos sites live), committing every result to
  the shared :class:`~repro.exec.store.ResultStore`;
* the caller's thread -- :meth:`SweepServer.start` / :meth:`stop` for
  embedding (tests), or :meth:`serve_forever` under ``python -m
  repro.serve``.

API::

    GET  /healthz              liveness + store/worker info
    GET  /metrics              ServeMetrics snapshot + derived ratios
    POST /jobs                 {"points": [spec...], "priority", "tag",
                                "client"} -> {"job_id", "deduped", ...}
    GET  /jobs[?state=queued]  recent jobs
    GET  /jobs/<id>            status + journal progress
    GET  /jobs/<id>/result     results in point order (terminal jobs)
    GET  /jobs/<id>/events     chunked NDJSON event stream (live-follow)
    POST /jobs/<id>/cancel     cancel queued, or signal a running job

Guarantees:

* **bit-identity** -- a point is executed by the same
  ``execute_point`` path a serial local run uses (packet ids rewound per
  point), so results fetched through the server equal a local
  ``run_sweep`` byte for byte;
* **dedup, never recompute** -- a resubmitted job joins its live twin
  (content-addressed id); a point already in the store is served from
  it; a point being computed by another worker is *joined* (the second
  job waits for the row instead of simulating);
* **crash safety** -- jobs found ``running`` at startup were orphaned by
  a kill and are requeued; their committed points replay from the store,
  so a SIGKILL mid-sweep loses nothing and duplicates nothing.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exec.engine import run_sweep
from repro.exec.store import STORE_SCHEMA_VERSION, ResultStore
from repro.obs.manifest import SweepTelemetry
from repro.obs.metrics import ServeMetrics
from repro.serve.jobs import JOB_STATES, JobQueue, points_from_specs

#: request-body ceiling (a --full sweep of specs is ~1 MB; 16 MB is safe).
MAX_BODY_BYTES = 16 * 1024 * 1024

_TERMINAL = ("done", "failed", "cancelled")


class _StreamingTelemetry(SweepTelemetry):
    """Engine telemetry that forwards each span to the job's event feed."""

    def __init__(self, publish) -> None:
        super().__init__()
        self._publish = publish

    def record_point(self, point, **kwargs) -> dict:
        span = super().record_point(point, **kwargs)
        self._publish({"event": "span", **span})
        return span


class SweepServer:
    """Embeddable job server; see the module docstring for the API."""

    def __init__(
        self,
        store_path,
        host: str = "127.0.0.1",
        port: int = 8923,
        workers: int = 2,
        point_timeout: Optional[float] = None,
        retries: int = 1,
        poll_s: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store_path = str(store_path)
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self.workers = workers
        self.point_timeout = point_timeout
        self.retries = retries
        self.poll_s = poll_s
        self.metrics = ServeMetrics()
        self._started_mono: Optional[float] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._stopped_loop: Optional[asyncio.Event] = None
        # Per-job event buffers + cancel flags; guarded by _state_lock.
        self._events: Dict[str, List[dict]] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._state_lock = threading.Lock()
        # In-flight point registry: point key -> done event (leader sets).
        self._inflight: Dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "SweepServer":
        """Bind, recover orphaned jobs, spawn the loop + worker threads."""
        recovery = JobQueue(self.store_path)
        requeued = recovery.requeue_running()
        recovery.store.close()
        self._started_mono = time.monotonic()
        ready = threading.Event()
        failure: List[BaseException] = []
        self._loop_thread = threading.Thread(
            target=self._loop_main, args=(ready, failure),
            name="serve-loop", daemon=True,
        )
        self._loop_thread.start()
        ready.wait(timeout=10)
        if failure:
            raise failure[0]
        if self.port is None:
            raise RuntimeError("server failed to bind within 10 s")
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_main, args=(index,),
                name=f"serve-worker-{index}", daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        if requeued:
            self._log(f"requeued {requeued} orphaned running job(s)")
        self._log(
            f"serving on http://{self.host}:{self.port} "
            f"(store={self.store_path}, workers={self.workers})"
        )
        return self

    def stop(self) -> None:
        """Stop accepting work and wind the threads down.

        A job caught mid-execution is left ``running`` in the table --
        deliberately the same state a crash leaves, so the next start
        requeues it and its committed points replay from the store.
        """
        self._stop.set()
        loop = self._loop
        if loop is not None and self._stopped_loop is not None:
            try:
                loop.call_soon_threadsafe(self._stopped_loop.set)
            except RuntimeError:
                pass
        for thread in self._worker_threads:
            thread.join(timeout=10)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)

    def serve_forever(self) -> None:
        self.start()
        try:
            while not self._stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def _log(self, message: str) -> None:
        import sys

        print(f"[serve] {message}", file=sys.stderr, flush=True)

    # -- asyncio side ---------------------------------------------------------
    def _loop_main(self, ready: threading.Event, failure: list) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(ready))
        except BaseException as exc:  # surfaced to start()
            failure.append(exc)
            ready.set()
        finally:
            loop.close()

    async def _serve(self, ready: threading.Event) -> None:
        self._stopped_loop = asyncio.Event()
        # The loop thread's own view of the queue/store (connections are
        # thread-bound).
        self._api_queue = JobQueue(self.store_path)
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        ready.set()
        try:
            await self._stopped_loop.wait()
        finally:
            server.close()
            await server.wait_closed()
            self._api_queue.store.close()

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            self.metrics.http_requests.inc()
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:
            self.metrics.http_errors.inc()
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, dict, Optional[dict]]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        body = None
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw)
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        return method.upper(), split.path, query, body

    async def _respond(
        self, writer, status: int, payload: dict
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 409: "Conflict",
                   500: "Internal Server Error"}
        data = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    async def _route(self, writer, method, path, query, body) -> None:
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self._health())
            return
        if path == "/metrics" and method == "GET":
            await self._respond(writer, 200, self._metrics_payload())
            return
        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                if method == "POST":
                    await self._handle_submit(writer, body)
                elif method == "GET":
                    await self._handle_list(writer, query)
                else:
                    await self._respond(
                        writer, 405, {"error": f"{method} not allowed"}
                    )
                return
            job_id = parts[1]
            if len(parts) == 2 and method == "GET":
                await self._handle_status(writer, job_id)
                return
            if len(parts) == 3 and parts[2] == "result" and method == "GET":
                await self._handle_result(writer, job_id)
                return
            if len(parts) == 3 and parts[2] == "events" and method == "GET":
                await self._handle_events(writer, job_id)
                return
            if len(parts) == 3 and parts[2] == "cancel" and method == "POST":
                await self._handle_cancel(writer, job_id)
                return
        self.metrics.http_errors.inc()
        await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    # -- handlers -------------------------------------------------------------
    def _health(self) -> dict:
        uptime = (
            time.monotonic() - self._started_mono
            if self._started_mono is not None else 0.0
        )
        return {
            "status": "ok",
            "store": self.store_path,
            "schema_version": STORE_SCHEMA_VERSION,
            "workers": self.workers,
            "uptime_s": round(uptime, 3),
            "queue": self._api_queue.counts(),
        }

    def _metrics_payload(self) -> dict:
        counts = self._api_queue.counts()
        self.metrics.observe_queue(counts)
        uptime = (
            time.monotonic() - self._started_mono
            if self._started_mono is not None else 0.0
        )
        return {
            "queue": counts,
            "derived": self.metrics.derived(self.workers, uptime),
            "instruments": self.metrics.registry.snapshot(),
        }

    async def _handle_submit(self, writer, body) -> None:
        if not isinstance(body, dict) or not body.get("points"):
            self.metrics.http_errors.inc()
            await self._respond(
                writer, 400, {"error": "body must carry a points list"}
            )
            return
        try:
            points = points_from_specs(body["points"])
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError) as exc:
            self.metrics.http_errors.inc()
            await self._respond(
                writer, 400, {"error": f"invalid job: {exc}"}
            )
            return
        job_id, deduped = self._api_queue.submit(
            points,
            priority=priority,
            tag=body.get("tag"),
            client=body.get("client"),
        )
        if deduped:
            self.metrics.jobs_deduped.inc()
        else:
            self.metrics.jobs_submitted.inc()
        job = self._api_queue.get(job_id)
        await self._respond(writer, 200, {
            "job_id": job_id,
            "deduped": deduped,
            "state": job["state"],
            "num_points": job["num_points"],
        })

    async def _handle_list(self, writer, query) -> None:
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            self.metrics.http_errors.inc()
            await self._respond(
                writer, 400,
                {"error": f"state must be one of {sorted(JOB_STATES)}"},
            )
            return
        limit = min(int(query.get("limit", 100)), 1000)
        await self._respond(writer, 200, {
            "jobs": self._api_queue.list_jobs(state=state, limit=limit),
        })

    async def _handle_status(self, writer, job_id) -> None:
        job = self._api_queue.get(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        await self._respond(writer, 200, job)

    async def _handle_result(self, writer, job_id) -> None:
        job = self._api_queue.get(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if job["state"] not in _TERMINAL:
            await self._respond(writer, 409, {
                "error": "job not finished", "state": job["state"],
            })
            return
        results = self._api_queue.results_for(job_id)
        await self._respond(writer, 200, {
            "job_id": job_id,
            "state": job["state"],
            "error": job["error"],
            "results": [
                result.to_dict() if result is not None else None
                for result in results
            ],
        })

    async def _handle_cancel(self, writer, job_id) -> None:
        job = self._api_queue.get(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if job["state"] == "running":
            with self._state_lock:
                flag = self._cancel_flags.setdefault(
                    job_id, threading.Event()
                )
            flag.set()
            await self._respond(
                writer, 200, {"job_id": job_id, "state": "running",
                              "cancelling": True}
            )
            return
        state = self._api_queue.cancel(job_id)
        await self._respond(
            writer, 200, {"job_id": job_id, "state": state,
                          "cancelling": state == "cancelled"}
        )

    async def _handle_events(self, writer, job_id) -> None:
        job = self._api_queue.get(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        async def emit(event: dict) -> None:
            data = (json.dumps(event) + "\n").encode("utf-8")
            writer.write(f"{len(data):x}\r\n".encode("latin-1"))
            writer.write(data + b"\r\n")
            await writer.drain()

        await emit({"event": "snapshot", "job": job})
        cursor = 0
        while True:
            with self._state_lock:
                buffered = list(self._events.get(job_id, ()))
            while cursor < len(buffered):
                await emit(buffered[cursor])
                cursor += 1
            job = self._api_queue.get(job_id)
            if job["state"] in _TERMINAL:
                with self._state_lock:
                    buffered = list(self._events.get(job_id, ()))
                while cursor < len(buffered):
                    await emit(buffered[cursor])
                    cursor += 1
                await emit({"event": "end", "state": job["state"]})
                break
            if self._stop.is_set():
                await emit({"event": "end", "state": job["state"]})
                break
            await asyncio.sleep(0.05)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- worker side ----------------------------------------------------------
    def _publish(self, job_id: str, event: dict) -> None:
        with self._state_lock:
            self._events.setdefault(job_id, []).append(event)

    def _worker_main(self, index: int) -> None:
        queue = JobQueue(self.store_path)
        try:
            while not self._stop.is_set():
                job = queue.claim(f"worker-{index}")
                if job is None:
                    self._stop.wait(self.poll_s)
                    continue
                busy_start = time.monotonic()
                try:
                    self._run_job(queue, job, index)
                finally:
                    self.metrics.worker_busy(
                        index, time.monotonic() - busy_start
                    )
        finally:
            queue.store.close()

    def _run_job(self, queue: JobQueue, job: dict, index: int) -> None:
        job_id = job["job_id"]
        points = points_from_specs(job["points"])
        with self._state_lock:
            cancel = self._cancel_flags.setdefault(job_id, threading.Event())
        started = time.monotonic()
        telemetry = _StreamingTelemetry(
            lambda span: self._publish(job_id, span)
        )
        self._publish(job_id, {
            "event": "job_started", "job_id": job_id,
            "worker": f"worker-{index}", "num_points": len(points),
        })
        errors: List[str] = []
        for seq, point in enumerate(points):
            if cancel.is_set():
                queue.finish(job_id, "cancelled")
                self._publish(job_id, {
                    "event": "job_cancelled", "job_id": job_id,
                    "after_points": seq,
                })
                self.metrics.job_finished(
                    "cancelled", time.monotonic() - started
                )
                self._clear_job(job_id)
                return
            if self._stop.is_set():
                # Shutdown mid-job: leave the row 'running' so the next
                # start requeues it -- identical to crash semantics.
                return
            point_start = time.monotonic()
            result, source = self._run_point(queue.store, point, telemetry)
            self.metrics.point_latency.observe(
                time.monotonic() - point_start
            )
            if result.error is not None:
                errors.append(f"{point.label}: {result.error}")
                self.metrics.point_errors.inc()
            else:
                queue.store.mark_committed(job_id, point)
            self._publish(job_id, {
                "event": "point",
                "seq": seq,
                "label": point.label,
                "key": point.key(),
                "source": source,
                "error": result.error,
            })
        state = "failed" if errors else "done"
        queue.finish(
            job_id, state, error="; ".join(errors[:5]) if errors else None
        )
        self._publish(job_id, {
            "event": f"job_{state}", "job_id": job_id,
            "points": len(points), "errors": len(errors),
        })
        self.metrics.job_finished(state, time.monotonic() - started)
        self._clear_job(job_id)

    def _clear_job(self, job_id: str) -> None:
        with self._state_lock:
            self._cancel_flags.pop(job_id, None)

    def _run_point(
        self, store: ResultStore, point, telemetry
    ) -> Tuple[object, str]:
        """One point: cached row, joined in-flight computation, or run it.

        Returns ``(result, source)`` with ``source`` in ``"cached"`` /
        ``"joined"`` / ``"computed"`` -- never recomputing a point the
        store already holds or another worker is already simulating.
        """
        key = point.key()
        hit = store.get(point)
        if hit is not None:
            hit.from_cache = True
            self.metrics.point_cache_hits.inc()
            return hit, "cached"
        while True:
            with self._inflight_lock:
                leader_done = self._inflight.get(key)
                if leader_done is None:
                    self._inflight[key] = threading.Event()
            if leader_done is None:
                break  # we are the leader
            self.metrics.point_inflight_joins.inc()
            leader_done.wait()
            hit = store.get(point)
            if hit is not None:
                hit.from_cache = True
                return hit, "joined"
            # The leader failed to produce a row; take over.
        try:
            result = run_sweep(
                [point],
                jobs=1,
                backend="serial",
                cache=None,
                progress=None,
                timeout=self.point_timeout,
                retries=self.retries,
                on_error="capture",
                telemetry=telemetry,
                submit=None,
            )[0]
            self.metrics.points_executed.inc()
            if result.error is None:
                store.put(point, result)
            return result, "computed"
        finally:
            with self._inflight_lock:
                done = self._inflight.pop(key, None)
            if done is not None:
                done.set()
