"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.layouts import build_network, layout_by_name
from repro.core.power import network_power_breakdown
from repro.exec import PointResult, run_sweep, sweep_points
from repro.obs import Observation, observe
from repro.traffic.patterns import pattern_by_name
from repro.traffic.runner import run_synthetic

# Default measurement sizes.  The paper warms up with 1,000 packets and
# measures 100,000; pure-Python simulation scales these down (DESIGN.md's
# performance note).  "fast" is used by the test suite and the benchmark
# defaults, "full" by a patient command-line run.
FAST_SCALE = {"warmup_packets": 100, "measure_packets": 600}
FULL_SCALE = {"warmup_packets": 1000, "measure_packets": 10000}


def measurement_scale(fast: bool) -> Dict[str, int]:
    return dict(FAST_SCALE if fast else FULL_SCALE)


def run_layout_synthetic(
    layout_name: str,
    pattern_name: str,
    rate: float,
    fast: bool = True,
    seed: int = 11,
    flit_mode: str = "paper",
    observe_window: Optional[int] = None,
    trace: bool = False,
    profile: bool = False,
    metrics: bool = False,
    progress: Optional[Callable] = None,
    **overrides,
) -> Dict[str, object]:
    """Build a layout network, drive it with a pattern, return key metrics.

    Observability (``repro.obs``) rides along on demand: ``observe_window``
    enables windowed time-series sampling at that width, ``trace`` records
    hop-by-hop traces of measured packets, ``profile`` collects step-phase
    wall-clock timings, ``metrics`` attaches the kernel metrics registry
    (per-link/per-pair counters feeding bottleneck attribution) and
    ``progress`` receives ETA heartbeats.  The attached
    :class:`~repro.obs.Observation` bundle (finalized) is returned under
    the ``"observation"`` key (``None`` when disabled).
    """
    layout = layout_by_name(layout_name)
    network = build_network(layout, flit_mode=flit_mode)
    pattern = pattern_by_name(pattern_name, network.topology)
    scale = measurement_scale(fast)
    scale.update(overrides)
    observation: Optional[Observation] = None
    if observe_window is not None or trace or profile or metrics:
        observation = observe(
            network,
            sample_window=observe_window if observe_window is not None else 100,
            trace=trace,
            profile=profile,
            metrics=metrics,
        )
    result = run_synthetic(
        network,
        pattern,
        rate,
        seed=seed,
        profiler=observation.profiler if observation is not None else None,
        progress=progress,
        **scale,
    )
    if observation is not None:
        observation.finalize()
    power = network_power_breakdown(network, result.stats)
    return {
        "layout": layout_name,
        "pattern": pattern_name,
        "rate": rate,
        "result": result,
        "network": network,
        "observation": observation,
        "latency_cycles": result.stats.avg_latency_cycles,
        "latency_ns": result.avg_latency_ns(layout.frequency_ghz),
        "queuing_cycles": result.stats.avg_queuing_cycles,
        "blocking_cycles": result.stats.avg_blocking_cycles,
        "transfer_cycles": result.stats.avg_transfer_cycles,
        "throughput": result.throughput_packets_per_node_cycle,
        "power_w": power["total"],
        "power_breakdown": power,
        "saturated": result.saturated,
        "summary": result.stats.summary(layout.frequency_ghz),
    }


def point_metrics(result: PointResult) -> Dict[str, object]:
    """A :class:`~repro.exec.PointResult` as the flat dict the harness
    tables are built from (same keys :func:`run_layout_synthetic` uses)."""
    return {
        "rate": result.rate,
        "latency_cycles": result.latency_cycles,
        "latency_ns": result.latency_ns,
        "queuing_cycles": result.queuing_cycles,
        "blocking_cycles": result.blocking_cycles,
        "transfer_cycles": result.transfer_cycles,
        "throughput": result.throughput,
        "power_w": result.power_w,
        "power_breakdown": dict(result.power_breakdown),
        "saturated": result.saturated,
        "merge_fraction": result.merge_fraction,
    }


def sweep_layouts(
    layouts: Sequence[str],
    pattern_name: str,
    rates: Sequence[float],
    fast: bool = True,
    seed: int = 11,
    flit_mode: str = "paper",
) -> Dict[str, List[Dict[str, object]]]:
    """Run a layouts x rates sweep through the execution engine.

    The workhorse of the figure harnesses: builds one
    :class:`~repro.exec.SweepPoint` per (layout, rate), executes them via
    :func:`repro.exec.run_sweep` (parallel and cached when ``run_all
    --jobs``/``REPRO_JOBS`` say so) and regroups the results into
    per-layout curves ordered like ``rates``.
    """
    scale = measurement_scale(fast)
    points = sweep_points(
        layouts,
        pattern_name,
        rates,
        seed=seed,
        flit_mode=flit_mode,
        warmup_packets=scale["warmup_packets"],
        measure_packets=scale["measure_packets"],
    )
    results = run_sweep(points)
    curves: Dict[str, List[Dict[str, object]]] = {}
    for li, layout in enumerate(layouts):
        curves[layout] = [
            point_metrics(results[li * len(rates) + ri])
            for ri in range(len(rates))
        ]
    return curves


def percent_change(new: float, old: float) -> float:
    """Signed percent change of ``new`` relative to ``old``."""
    if old == 0:
        raise ValueError("reference value is zero")
    return 100.0 * (new - old) / old


def percent_reduction(new: float, old: float) -> float:
    """Positive when ``new`` is smaller than ``old``."""
    return -percent_change(new, old)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a plain-text table (the harnesses print paper-style rows)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
