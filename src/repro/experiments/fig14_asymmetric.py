"""Figure 14: asymmetric CMP with a heterogeneous interconnect (Section 7).

Platform: 4 large out-of-order cores at the mesh corners and 60 small
in-order cores elsewhere.  Each large core runs one instance of the
latency-sensitive libquantum; the small cores run 60 SPECjbb threads
(high-TLP, throughput oriented).  Three network configurations:

* ``HomoNoC-XY``          -- baseline homogeneous network, X-Y routing;
* ``HeteroNoC-XY``        -- Diagonal+BL, X-Y routing;
* ``HeteroNoC-Table+XY``  -- Diagonal+BL, with table-based routing for
  traffic to/from the large cores (zig-zag through the diagonal big
  routers, escape VCs for deadlock freedom) and X-Y for everything else.

Paper results: weighted speedup +6 % (HeteroNoC-XY) and +11 %
(HeteroNoC-Table+XY) over HomoNoC-XY; harmonic speedup +11.5 % with the
table, computed against each application's run-alone IPC (the harmonic
metric uses the slowest SPECjbb thread).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cmp import CmpSystem, harmonic_speedup, weighted_speedup
from repro.cmp.core_model import large_core_config, small_core_config
from repro.core.layouts import (
    asymmetric_cmp_layout,
    baseline_layout,
    layout_by_name,
)
from repro.experiments.common import format_table, percent_change
from repro.noc.routing import TableRouting
from repro.noc.topology import Mesh
from repro.traffic.workloads import WORKLOADS, generate_core_trace

NETWORKS = ("HomoNoC-XY", "HeteroNoC-XY", "HeteroNoC-Table+XY")
PAPER_WS_IMPROVEMENT = {"HeteroNoC-XY": 6.0, "HeteroNoC-Table+XY": 11.0}
PAPER_HS_IMPROVEMENT = {"HeteroNoC-Table+XY": 11.5}


def _build_system(
    network_name: str,
    traces: Dict[int, list],
    core_configs: Dict[int, object],
    mesh_size: int = 8,
) -> CmpSystem:
    if network_name == "HomoNoC-XY":
        layout = baseline_layout(mesh_size)
        routing = None
    else:
        layout = layout_by_name("diagonal+BL", mesh_size)
        routing = None
        if network_name == "HeteroNoC-Table+XY":
            placement = asymmetric_cmp_layout(mesh_size)
            routing = TableRouting(
                Mesh(mesh_size),
                big_routers=set(layout.big_positions),
                table_nodes=set(placement["large"]),
                escape_vc=0,
            )
    return CmpSystem(layout, traces, core_configs=core_configs, routing=routing)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def run(
    records_large: int = 400,
    records_small: int = 250,
    fast: bool = True,
    seed: int = 17,
    mesh_size: int = 8,
) -> Dict[str, object]:
    if fast:
        records_large, records_small = 250, 150
    placement = asymmetric_cmp_layout(mesh_size)
    large_nodes, small_nodes = placement["large"], placement["small"]
    libquantum = WORKLOADS["libquantum"]
    specjbb = WORKLOADS["SPECjbb"]
    large_traces = {
        node: generate_core_trace(libquantum, node, records_large, seed=seed)
        for node in large_nodes
    }
    small_traces = {
        node: generate_core_trace(specjbb, node, records_small, seed=seed)
        for node in small_nodes
    }
    core_configs = {node: large_core_config() for node in large_nodes}
    core_configs.update({node: small_core_config() for node in small_nodes})

    results: Dict[str, Dict[str, float]] = {}
    for network_name in NETWORKS:
        # Run-alone IPCs (each application with the platform to itself).
        alone_large = _run_ipc(
            network_name, large_traces, core_configs, mesh_size
        )
        alone_small = _run_ipc(
            network_name, small_traces, core_configs, mesh_size
        )
        shared = _run_ipc(
            network_name, {**large_traces, **small_traces}, core_configs, mesh_size
        )
        lib_alone = _mean([alone_large[n] for n in large_nodes])
        jbb_alone = _mean([alone_small[n] for n in small_nodes])
        lib_shared = _mean([shared[n] for n in large_nodes])
        jbb_shared = _mean([shared[n] for n in small_nodes])
        jbb_slowest = min(shared[n] for n in small_nodes)
        results[network_name] = {
            "weighted_speedup": weighted_speedup(
                [lib_shared, jbb_shared], [lib_alone, jbb_alone]
            ),
            # The paper's harmonic speedup uses the slowest SPECjbb thread.
            "harmonic_speedup": harmonic_speedup(
                [lib_shared, jbb_slowest], [lib_alone, jbb_alone]
            ),
            "libquantum_ipc": lib_shared,
            "specjbb_ipc": jbb_shared,
        }
    base = results["HomoNoC-XY"]
    summary = {
        name: {
            "ws_improvement_pct": percent_change(
                r["weighted_speedup"], base["weighted_speedup"]
            ),
            "hs_improvement_pct": percent_change(
                r["harmonic_speedup"], base["harmonic_speedup"]
            ),
        }
        for name, r in results.items()
        if name != "HomoNoC-XY"
    }
    return {"results": results, "summary": summary}


def _run_ipc(
    network_name: str,
    traces: Dict[int, list],
    core_configs: Dict[int, object],
    mesh_size: int,
) -> Dict[int, float]:
    system = _build_system(network_name, traces, core_configs, mesh_size)
    system.warm_caches()
    system.run(max_cycles=600_000)
    return system.per_core_ipc()


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    rows = []
    for name, r in data["results"].items():
        s = data["summary"].get(name, {})
        rows.append(
            [
                name,
                f"{r['weighted_speedup']:.3f}",
                f"{r['harmonic_speedup']:.3f}",
                f"{s.get('ws_improvement_pct', 0.0):+.1f}%",
                f"{s.get('hs_improvement_pct', 0.0):+.1f}%",
            ]
        )
    print(
        format_table(
            ["network", "weighted spdup", "harmonic spdup", "WS vs homo", "HS vs homo"],
            rows,
            "Figure 14: asymmetric CMP (paper: WS +6%/+11%, HS +11.5%)",
        )
    )


if __name__ == "__main__":
    main(fast=False)
