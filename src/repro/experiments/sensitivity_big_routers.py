"""Sensitivity study: how many big routers should a HeteroNoC have?

The paper fixes 16 big routers (2N) from symmetry and the power
inequality, and explicitly defers the wide/narrow link-ratio sensitivity
to future work (footnote 2).  This harness performs that study: it sweeps
the big-router budget along generalized diagonal placements
(:func:`repro.core.layouts.extended_diagonal_positions`), measuring

* UR latency and accepted throughput at a fixed offered load,
* modelled network power,
* the wide-link fraction of the bisection, and
* whether the power inequality (Section 2) still holds.

The paper's own guideline predicts the interesting boundary: with Table 1
router powers, power neutrality requires at least 38 small routers, i.e.
at most 26 big ones on the 8x8 mesh.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.hetero import bisection_bandwidth_bits, min_small_routers
from repro.core.layouts import (
    baseline_layout,
    custom_layout,
    extended_diagonal_positions,
)
from repro.exec import SweepPoint, run_sweep
from repro.experiments.common import format_table, measurement_scale
from repro.noc.topology import Mesh

DEFAULT_BUDGETS = (0, 8, 16, 24, 32)


def run(
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    rate: float = 0.05,
    mesh_size: int = 8,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, object]:
    scale = measurement_scale(fast)
    max_big_power_neutral = mesh_size**2 - min_small_routers(mesh_size)
    mesh = Mesh(mesh_size)
    common = dict(
        mesh_size=mesh_size,
        pattern="uniform_random",
        rate=rate,
        seed=seed,
        warmup_packets=scale["warmup_packets"],
        measure_packets=scale["measure_packets"],
    )
    layouts = {}
    points = []
    for num_big in budgets:
        if num_big == 0:
            layouts[num_big] = baseline_layout(mesh_size)
            points.append(SweepPoint(layout="baseline", **common))
        else:
            positions = extended_diagonal_positions(mesh_size, num_big)
            layouts[num_big] = custom_layout(
                f"diag-ext-{num_big}", positions, mesh_size=mesh_size
            )
            points.append(
                SweepPoint(layout=None, big_positions=tuple(positions), **common)
            )
    results = run_sweep(points)
    rows: List[Dict[str, object]] = []
    for num_big, result in zip(budgets, results):
        configs = layouts[num_big].router_configs("strict")
        bisection = bisection_bandwidth_bits(mesh, configs)
        rows.append(
            {
                "num_big": num_big,
                "latency_cycles": result.latency_cycles,
                "latency_ns": result.latency_ns,
                "throughput": result.throughput,
                "power_w": result.power_w,
                "bisection_bits": bisection,
                "power_neutral": num_big <= max_big_power_neutral,
            }
        )
    return {
        "rate": rate,
        "rows": rows,
        "max_big_power_neutral": max_big_power_neutral,
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    print(
        f"Sensitivity: big-router budget on the 8x8 mesh "
        f"(UR @ {data['rate']} packets/node/cycle)"
    )
    print(
        f"power-neutrality bound (Section 2 inequality): "
        f"<= {data['max_big_power_neutral']} big routers\n"
    )
    table_rows = [
        [
            row["num_big"],
            f"{row['latency_ns']:.1f}",
            f"{row['throughput']:.4f}",
            f"{row['power_w']:.1f}",
            row["bisection_bits"],
            "yes" if row["power_neutral"] else "NO",
        ]
        for row in data["rows"]
    ]
    print(
        format_table(
            ["big", "latency ns", "throughput", "power W", "bisection b", "power-neutral"],
            table_rows,
        )
    )


if __name__ == "__main__":
    main(fast=False)
