"""Placement search: from the 4x4 exhaustive stage to 8x8 metaheuristics.

The paper's placement methodology (footnote 4) is a two-stage funnel:
enumerate every 4x4 placement analytically, then settle the leaders by
cycle simulation -- and *extrapolate* the winning shapes to the 8x8 mesh,
where C(64, 16) ~= 4.9e14 placements rule out enumeration.  This harness
reproduces the enumerable stage exactly and then searches the 8x8 space
directly with the :mod:`repro.search` metaheuristics:

1. **4x4 ground truth** -- exhaustive search over all 12,870 8-big
   placements; the global optimum of the multi-objective score is the
   paper's exact Figure 3 diagonal (a member of the wrapped-diagonal
   family).
2. **Optimizer validation** -- a seeded simulated-annealing run on the
   same 4x4 space re-finds the exhaustive optimum exactly (same
   canonical placement), with an order of magnitude fewer evaluations.
3. **8x8 search** -- annealing plus an evolutionary recombination stage
   over the SA survivors, under uniform-random and hotspot traffic.
4. **Shape extrapolation** -- the 4x4 winners are wrapped-diagonal
   unions, so the same shape family is generated on 8x8 (every disjoint
   union of full wrapped diagonals, the paper's extrapolation made
   mechanical) and ranked against the search survivors.  Under uniform
   random the family tops the merged pool; the metaheuristics act as the
   adversarial check that no unstructured placement beats it.
5. **Pareto frontier** -- the analytic-latency vs resilience frontier
   over everything evaluated (the fault-aware placement question PR 3's
   kill study motivates).
6. **Refinement** -- the leaders are cycle-simulated near saturation as
   :class:`repro.exec.SweepPoint` batches (parallel over ``REPRO_JOBS``,
   disk-cached, bit-identical across backends), confirming that the
   search's top placement beats the named ``diagonal+BL`` placement
   under uniform-random traffic.

Usage::

    python -m repro.experiments.placement_search            # fast scale
    python -m repro.experiments.placement_search --full     # deeper search
    python -m repro.experiments.placement_search --smoke    # CI smoke (4x4 only)
"""

from __future__ import annotations

import itertools
import statistics
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.layouts import diagonal_positions
from repro.experiments.common import format_table
from repro.search import (
    PlacementEvaluator,
    canonical_placement,
    evolutionary_search,
    exhaustive_search,
    is_diagonal_family,
    pareto_frontier,
    simulated_annealing,
)
from repro.search.canonical import wrapped_diagonals
from repro.search.refine import refine_placements

SMALL_MESH = 4
LARGE_MESH = 8
NUM_BIG_SMALL = 8   # the footnote-4 (8 big, 8 small) split
NUM_BIG_LARGE = 16  # the paper's 8x8 big-router budget (2n)

#: near-saturation rate for the refinement stage: at low load latency is
#: serialization-dominated and placements are indistinguishable; the
#: contention the placements exist to relieve only bites near saturation.
REFINE_RATE = 0.15
#: refinement simulates each candidate under several seeds and compares
#: mean latency, so a single lucky drain does not decide the ordering.
REFINE_SEEDS = (5, 6, 7)

PATTERNS = ("uniform_random", "hotspot")


def family_candidates(n: int, num_big: int) -> List[Tuple[int, ...]]:
    """Every diagonal-family placement of ``num_big`` routers on ``n x n``.

    Members are disjoint unions of ``num_big // n`` full wrapped
    diagonals -- the shape class the 4x4 exhaustive winners belong to,
    generated on the target mesh exactly the way the paper extrapolated
    its 4x4 shapes to 8x8.  Deduplicated by (full dihedral) canonical
    form.
    """
    if num_big % n:
        return []
    bands = wrapped_diagonals(n)
    seen = set()
    out: List[Tuple[int, ...]] = []
    for combo in itertools.combinations(bands, num_big // n):
        union = frozenset().union(*combo)
        if len(union) != num_big:
            continue  # overlapping bands
        canon = canonical_placement(union, n)
        if canon in seen:
            continue
        seen.add(canon)
        out.append(canon)
    return out


def _search_budget(fast: bool, smoke: bool) -> Dict[str, int]:
    if smoke:
        return {"steps": 300, "restarts": 3, "generations": 0, "population": 0}
    if fast:
        return {"steps": 1200, "restarts": 2, "generations": 12, "population": 20}
    return {"steps": 5000, "restarts": 4, "generations": 30, "population": 24}


def _record_row(record, n: int) -> List[str]:
    return [
        str(record.canonical),
        f"{record.scalar:.4f}",
        f"{record.analytic:.4f}",
        f"{record.resilience:.4f}",
        "yes" if is_diagonal_family(record.canonical, n) else "no",
    ]


def run(
    fast: bool = True,
    seed: int = 0,
    smoke: bool = False,
    refine_packets: Optional[int] = None,
) -> Dict[str, object]:
    """Run all stages; returns the full result bundle plus named checks."""
    checks: Dict[str, bool] = {}
    out: Dict[str, object] = {"checks": checks}

    # -- stage 1: 4x4 exhaustive ground truth --------------------------------
    ev4 = PlacementEvaluator(SMALL_MESH)
    exhaustive = exhaustive_search(ev4, NUM_BIG_SMALL)
    diag4 = canonical_placement(diagonal_positions(SMALL_MESH), SMALL_MESH)
    out["exhaustive"] = exhaustive
    out["count_4x4"] = exhaustive.proposals
    checks["4x4 exhaustive optimum is the Figure 3 diagonal"] = (
        exhaustive.best_placement == diag4
    )
    checks["4x4 exhaustive optimum is diagonal-family"] = is_diagonal_family(
        exhaustive.best_placement, SMALL_MESH
    )
    checks["4x4 leader set contains the diagonal shape"] = any(
        record.canonical == diag4 for record in exhaustive.top
    )

    # -- stage 2: annealer re-finds the exhaustive optimum -------------------
    budget = _search_budget(fast, smoke)
    ev4_sa = PlacementEvaluator(SMALL_MESH)
    anneal4 = simulated_annealing(
        ev4_sa,
        NUM_BIG_SMALL,
        seed=seed,
        steps=budget["steps"] if not smoke else 300,
        restarts=budget["restarts"] if not smoke else 3,
    )
    out["anneal_4x4"] = anneal4
    checks["4x4 annealing matches the exhaustive optimum exactly"] = (
        anneal4.best_placement == exhaustive.best_placement
    )
    checks["4x4 annealing winner is diagonal-family"] = is_diagonal_family(
        anneal4.best_placement, SMALL_MESH
    )

    if smoke:
        out["refinement"] = _refine_stage(
            [exhaustive.best_placement, anneal4.top[-1].canonical, diag4],
            SMALL_MESH,
            baseline=diag4,
            measure_packets=refine_packets or 200,
            seeds=REFINE_SEEDS[:2],
            checks=checks,
            label="4x4",
        )
        return out

    # -- stage 3 + 4: 8x8 search and shape extrapolation ---------------------
    family8 = family_candidates(LARGE_MESH, NUM_BIG_LARGE)
    out["family_size_8x8"] = len(family8)
    diag8 = tuple(sorted(diagonal_positions(LARGE_MESH)))
    searches: Dict[str, Dict[str, object]] = {}
    for pattern in PATTERNS:
        evaluator = PlacementEvaluator(LARGE_MESH, pattern=pattern)
        sa = simulated_annealing(
            evaluator,
            NUM_BIG_LARGE,
            seed=seed,
            steps=budget["steps"],
            restarts=budget["restarts"],
            t_initial=0.05,
        )
        # Recombination stage: the GA breeds the SA survivors; crossover
        # between near-optima that agree on most seats makes coordinated
        # multi-seat repairs the annealing walk essentially never makes.
        ga = evolutionary_search(
            evaluator,
            NUM_BIG_LARGE,
            seed=seed + 1,
            generations=budget["generations"],
            population=budget["population"],
            initial=[record.positions for record in sa.top],
        )
        family_records = [evaluator.evaluate(p) for p in family8]
        diag_record = evaluator.evaluate(diag8)
        pool = {
            record.canonical: record
            for record in [*sa.top, *ga.top, *family_records, diag_record]
        }
        ranked = sorted(
            pool.values(), key=lambda r: (-r.scalar, r.canonical)
        )
        best_family = max(family_records, key=lambda r: (r.scalar, r.canonical))
        searches[pattern] = {
            "annealing": sa,
            "evolutionary": ga,
            "ranked": ranked,
            "best_family": best_family,
            "diagonal_bl": diag_record,
            "evaluations": evaluator.evaluations,
            "cache_hits": evaluator.cache_hits,
        }
        top = ranked[0]
        checks[f"8x8 {pattern}: search top beats/ties diagonal+BL analytic"] = (
            max(sa.best.analytic, ga.best.analytic)
            >= diag_record.analytic - 1e-12
        )
        checks[f"8x8 {pattern}: search top beats/ties diagonal+BL scalar"] = (
            max(sa.best.scalar, ga.best.scalar) >= diag_record.scalar - 1e-12
        )
        if pattern == "uniform_random":
            checks["8x8 uniform_random: diagonal-family tops the merged pool"] = (
                is_diagonal_family(top.canonical, LARGE_MESH)
            )
    out["searches"] = searches

    # -- stage 5: Pareto frontier (uniform random) ---------------------------
    ur = searches["uniform_random"]
    out["pareto"] = pareto_frontier(
        ur["ranked"], axes=("analytic", "resilience")
    )

    # -- stage 6: cycle-simulated refinement ---------------------------------
    sa_best = ur["annealing"].best
    ga_best = ur["evolutionary"].best
    search_top = max((sa_best, ga_best), key=lambda r: r.scalar)
    candidates = [
        search_top.canonical,
        ur["best_family"].canonical,
        diag8,
    ]
    out["refinement"] = _refine_stage(
        candidates,
        LARGE_MESH,
        baseline=diag8,
        measure_packets=refine_packets or (600 if fast else 2000),
        seeds=REFINE_SEEDS,
        checks=checks,
        label="8x8",
    )
    return out


def _refine_stage(
    candidates: Sequence[Iterable[int]],
    mesh_size: int,
    baseline: Tuple[int, ...],
    measure_packets: int,
    seeds: Sequence[int],
    checks: Dict[str, bool],
    label: str,
) -> Dict[str, object]:
    """Cycle-simulate candidates under several seeds; compare mean latency.

    ``baseline`` names the placement the search's top must beat or tie
    (the ``diagonal+BL`` big positions on 8x8).  Every (candidate, seed)
    pair is one :class:`repro.exec.SweepPoint`, so the batch parallelizes
    and caches through :func:`repro.exec.run_sweep`.
    """
    unique: List[Tuple[int, ...]] = []
    for candidate in candidates:
        key = tuple(sorted(candidate))
        if key not in unique:
            unique.append(key)
    per_seed: Dict[Tuple[int, ...], List[float]] = {p: [] for p in unique}
    cache_hits = 0
    total_points = 0
    for run_seed in seeds:
        records = refine_placements(
            unique,
            mesh_size,
            rate=REFINE_RATE,
            seed=run_seed,
            measure_packets=measure_packets,
        )
        for record in records:
            per_seed[tuple(sorted(record["big_positions"]))].append(
                record["latency_cycles"]
            )
            cache_hits += bool(record["from_cache"])
            total_points += 1
    rows = sorted(
        (
            {
                "big_positions": positions,
                "mean_latency_cycles": statistics.mean(latencies),
                "min_latency_cycles": min(latencies),
                "max_latency_cycles": max(latencies),
                "is_family": is_diagonal_family(positions, mesh_size),
            }
            for positions, latencies in per_seed.items()
        ),
        key=lambda row: row["mean_latency_cycles"],
    )
    baseline_key = tuple(sorted(baseline))
    baseline_mean = statistics.mean(per_seed[baseline_key])
    focus_key = unique[0]  # first candidate = the search's top placement
    focus_mean = statistics.mean(per_seed[focus_key])
    checks[
        f"{label} refinement: search top beats or ties the diagonal "
        "placement (mean latency)"
    ] = focus_mean <= baseline_mean + 1e-9
    return {
        "rows": rows,
        "rate": REFINE_RATE,
        "seeds": tuple(seeds),
        "measure_packets": measure_packets,
        "baseline": baseline_key,
        "baseline_mean_latency": baseline_mean,
        "search_top": focus_key,
        "search_top_mean_latency": focus_mean,
        "cache_hits": cache_hits,
        "total_points": total_points,
    }


def main(fast: bool = True, smoke: bool = False, **kwargs) -> None:
    data = run(fast=fast, smoke=smoke, **kwargs)
    checks: Dict[str, bool] = data["checks"]

    exhaustive = data["exhaustive"]
    print(
        f"Placement search (footnote 4 and beyond)\n\n"
        f"4x4 exhaustive: {data['count_4x4']:,} placements of "
        f"{NUM_BIG_SMALL} big routers"
    )
    print(
        format_table(
            ["placement", "scalar", "analytic", "resilience", "family"],
            [_record_row(r, SMALL_MESH) for r in exhaustive.top[:5]],
        )
    )
    anneal4 = data["anneal_4x4"]
    print(
        f"\n4x4 annealing (seed {anneal4.seed}): best "
        f"{anneal4.best_placement} in {anneal4.evaluations} evaluations "
        f"({anneal4.proposals} proposals) -- exhaustive needed "
        f"{data['count_4x4']:,}"
    )

    if not smoke:
        for pattern, stage in data["searches"].items():
            sa, ga = stage["annealing"], stage["evolutionary"]
            print(
                f"\n8x8 {pattern}: annealing best {sa.best.scalar:.4f}, "
                f"recombination best {ga.best.scalar:.4f}, "
                f"{stage['evaluations']} evaluations "
                f"(+{stage['cache_hits']} symmetry cache hits); "
                f"diagonal+BL scalar {stage['diagonal_bl'].scalar:.4f}, "
                f"best family {stage['best_family'].scalar:.4f}"
            )
            print(
                format_table(
                    ["placement", "scalar", "analytic", "resilience", "family"],
                    [_record_row(r, LARGE_MESH) for r in stage["ranked"][:5]],
                )
            )
        print("\nPareto frontier (analytic vs resilience, uniform random):")
        print(
            format_table(
                ["placement", "scalar", "analytic", "resilience", "family"],
                [_record_row(r, LARGE_MESH) for r in data["pareto"]],
            )
        )

    refinement = data["refinement"]
    print(
        f"\nRefinement: UR @ {refinement['rate']} packets/node/cycle, "
        f"seeds {refinement['seeds']}, {refinement['measure_packets']} "
        f"packets/point ({refinement['cache_hits']}/"
        f"{refinement['total_points']} points from cache)"
    )
    print(
        format_table(
            ["placement", "mean latency cy", "min", "max", "family"],
            [
                [
                    str(row["big_positions"]),
                    f"{row['mean_latency_cycles']:.2f}",
                    f"{row['min_latency_cycles']:.2f}",
                    f"{row['max_latency_cycles']:.2f}",
                    "yes" if row["is_family"] else "no",
                ]
                for row in refinement["rows"]
            ],
        )
    )

    print()
    failed = [name for name, passed in checks.items() if not passed]
    for name, passed in checks.items():
        print(f"[{'PASS' if passed else 'FAIL'}] {name}")
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        main(fast=True, smoke=True)
    else:
        main(fast="--full" not in argv)
