"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(...) -> dict`` returning the figure's data
series/rows, and a ``main()`` that prints them in the shape the paper
reports.  The ``benchmarks/`` tree wraps these with pytest-benchmark.

==========================  ==========================================
module                      reproduces
==========================  ==========================================
fig01_utilization           Fig 1  - mesh buffer/link utilization maps
fig02_other_topologies      Fig 2  - cmesh + flattened-butterfly maps
table1_router_model         Table 1 - router power/area/frequency
fig07_ur_traffic            Fig 7  - UR load-latency/throughput/power
fig08_breakdown             Fig 8  - latency & power breakdowns
fig09_nn_traffic            Fig 9  - nearest-neighbour anomaly
fig10_torus                 Fig 10 - mesh vs torus benefit
fig11_applications          Fig 11 - application latency/power (CMP)
fig12_ipc                   Fig 12 - IPC improvements (CMP)
fig13_memctrl               Fig 13 - memory-controller co-design
fig14_asymmetric            Fig 14 - asymmetric CMP + table routing
placement_search            Footnote 4 - exhaustive 4x4 placement
                            search, 8x8 metaheuristics + refinement
==========================  ==========================================
"""
