"""CSV export for experiment results.

Every harness returns plain dict/list structures; these helpers flatten
them into CSV files so the figures can be re-plotted outside Python.
``python -m repro.experiments.run_all --csv <dir>`` writes one file per
experiment.

:func:`export_observation` extends the same treatment to observability
artifacts (see :mod:`repro.obs`): sampler time series become long-format
CSVs, packet traces become JSONL plus a Chrome ``trace_event`` document,
and profiler reports become JSON.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Mapping, Sequence, Union

Scalar = Union[int, float, str, bool, None]


def write_rows(
    path: Union[str, pathlib.Path],
    rows: Sequence[Mapping[str, Scalar]],
    fieldnames: Sequence[str] = None,
) -> pathlib.Path:
    """Write a list of flat dicts as CSV; returns the path written."""
    if not rows:
        raise ValueError("nothing to export: rows is empty")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(fieldnames) if fieldnames else list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k) for k in fieldnames})
    return path


def flatten_grid(
    grid: Sequence[Sequence[float]], value_name: str = "value"
) -> List[Dict[str, Scalar]]:
    """Turn a 2-D heat-map grid into (row, col, value) records."""
    return [
        {"row": r, "col": c, value_name: cell}
        for r, row in enumerate(grid)
        for c, cell in enumerate(row)
    ]


def flatten_curves(
    curves: Mapping[str, Sequence[Mapping[str, Scalar]]],
    series_name: str = "series",
) -> List[Dict[str, Scalar]]:
    """Turn {series: [point, ...]} sweeps into long-format records."""
    records: List[Dict[str, Scalar]] = []
    for series, points in curves.items():
        for point in points:
            record: Dict[str, Scalar] = {series_name: series}
            record.update(point)
            records.append(record)
    return records


def export_experiment(name: str, data: Mapping, directory: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """Best-effort export of a harness result dict.

    Understands the common shapes the harnesses return: per-series curves
    (Figure 7/9), heat-map grids (Figures 1/2) and flat row lists
    (sensitivity study).  Unrecognized values are skipped.
    """
    directory = pathlib.Path(directory)
    written: List[pathlib.Path] = []
    for key, value in data.items():
        target = directory / f"{name}_{key}.csv"
        try:
            if (
                isinstance(value, Mapping)
                and value
                and all(isinstance(v, (list, tuple)) for v in value.values())
                and all(
                    isinstance(p, Mapping) for v in value.values() for p in v
                )
            ):
                written.append(write_rows(target, flatten_curves(value)))
            elif (
                isinstance(value, (list, tuple))
                and value
                and all(isinstance(v, Mapping) for v in value)
            ):
                written.append(write_rows(target, value))
            elif (
                isinstance(value, (list, tuple))
                and value
                and all(isinstance(v, (list, tuple)) for v in value)
            ):
                written.append(write_rows(target, flatten_grid(value)))
        except (ValueError, TypeError):
            continue
    return written


def export_observation(
    name: str, observation, directory: Union[str, pathlib.Path]
) -> List[pathlib.Path]:
    """Export an :class:`repro.obs.Observation` bundle's artifacts.

    Writes whatever the bundle collected: ``<name>_timeseries.csv`` /
    ``<name>_buffer_series.csv`` / ``<name>_link_series.csv`` for the
    sampler, ``<name>_trace.jsonl`` + ``<name>_trace_chrome.json`` for the
    tracer, ``<name>_profile.json`` for the profiler, and
    ``<name>_metrics.json`` + ``<name>_attribution{.json,_links.csv,
    _pairs.csv}`` for the kernel metrics.  Returns the list of paths
    written.
    """
    from repro.obs.exporters import (
        write_attribution,
        write_chrome_trace,
        write_metrics_json,
        write_profile_json,
        write_sampler_csv,
        write_trace_jsonl,
    )

    directory = pathlib.Path(directory)
    written: List[pathlib.Path] = []
    sampler = getattr(observation, "sampler", None)
    if sampler is not None and sampler.windows:
        written.extend(write_sampler_csv(sampler, directory, prefix=name))
    tracer = getattr(observation, "tracer", None)
    if tracer is not None and tracer.traces:
        written.append(write_trace_jsonl(tracer, directory / f"{name}_trace.jsonl"))
        written.append(
            write_chrome_trace(tracer, directory / f"{name}_trace_chrome.json")
        )
    profiler = getattr(observation, "profiler", None)
    if profiler is not None and profiler.steps:
        written.append(
            write_profile_json(profiler, directory / f"{name}_profile.json")
        )
    metrics = getattr(observation, "metrics", None)
    if metrics is not None and metrics.cycles:
        written.append(
            write_metrics_json(metrics, directory / f"{name}_metrics.json")
        )
        written.extend(write_attribution(metrics, directory, prefix=name))
    return written
