"""Figure 7: performance and power with uniform-random traffic.

(a) load-latency curves for the baseline and the HeteroNoC layouts;
(b) summary improvements -- saturation throughput, average latency over
    the load range, and zero-load latency -- of each layout over the
    baseline;
(c) network power vs injection rate for the +BL layouts.

The paper's headline: Diagonal+BL reduces latency by ~24 %, raises
throughput by ~22 % and cuts power by ~28 % under UR traffic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import (
    format_table,
    percent_change,
    percent_reduction,
    sweep_layouts,
)

DEFAULT_RATES = (0.01, 0.02, 0.03, 0.04, 0.05, 0.06)
CURVE_LAYOUTS = (
    "baseline",
    "center+B",
    "diagonal+B",
    "center+BL",
    "diagonal+BL",
    "row2_5+BL",
)
ALL_HETERO = (
    "center+B",
    "row2_5+B",
    "diagonal+B",
    "center+BL",
    "row2_5+BL",
    "diagonal+BL",
)


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    layouts: Sequence[str] = CURVE_LAYOUTS,
    fast: bool = True,
    seed: int = 11,
    pattern: str = "uniform_random",
) -> Dict[str, object]:
    """Sweep injection rate for each layout; also compute summary deltas.

    The (layout, rate) grid goes through the sweep engine
    (:mod:`repro.exec`) as independent points, so ``run_all --jobs N``
    fans it out across processes and a warm result cache skips the
    simulation entirely -- bit-identically either way.
    """
    samples = sweep_layouts(layouts, pattern, rates, fast=fast, seed=seed)
    curves: Dict[str, List[Dict[str, float]]] = {}
    for layout in layouts:
        curves[layout] = [
            {
                "rate": sample["rate"],
                "latency_ns": sample["latency_ns"],
                "latency_cycles": sample["latency_cycles"],
                "throughput": sample["throughput"],
                "power_w": sample["power_w"],
                "saturated": sample["saturated"],
            }
            for sample in samples[layout]
        ]

    summary = {}
    base = curves["baseline"]
    for layout in layouts:
        if layout == "baseline":
            continue
        points = curves[layout]
        latency_deltas = [
            percent_reduction(p["latency_ns"], b["latency_ns"])
            for p, b in zip(points, base)
            if not (p["saturated"] or b["saturated"])
        ]
        summary[layout] = {
            # Throughput improvement: accepted traffic at the highest
            # offered load (the saturation region).
            "throughput_improvement_pct": percent_change(
                points[-1]["throughput"], base[-1]["throughput"]
            ),
            "avg_latency_reduction_pct": (
                sum(latency_deltas) / len(latency_deltas) if latency_deltas else float("nan")
            ),
            "zero_load_latency_reduction_pct": percent_reduction(
                points[0]["latency_ns"], base[0]["latency_ns"]
            ),
            "power_reduction_pct": percent_reduction(
                points[-1]["power_w"], base[-1]["power_w"]
            ),
        }
    return {"rates": list(rates), "curves": curves, "summary": summary}


PAPER_SUMMARY = {
    # layout: (throughput %, avg latency %, zero load %), Figure 7(b)
    "center+B": (11.0, 10.5, 2.0),
    "row2_5+B": (4.5, 4.0, 2.0),
    "diagonal+B": (15.0, 13.5, 2.0),
    "center+BL": (17.0, 20.0, 12.0),
    "row2_5+BL": (14.0, 16.0, 12.0),
    "diagonal+BL": (22.0, 24.0, 12.0),
}


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    print("Figure 7(a): load-latency (ns)")
    headers = ["rate"] + list(data["curves"].keys())
    rows = []
    for i, rate in enumerate(data["rates"]):
        row = [f"{rate:.3f}"]
        for layout in data["curves"]:
            point = data["curves"][layout][i]
            mark = "*" if point["saturated"] else ""
            row.append(f"{point['latency_ns']:.1f}{mark}")
        rows.append(row)
    print(format_table(headers, rows))
    print("(* = offered load above saturation; latency unbounded)")
    print()
    print("Figure 7(b): improvement over baseline (measured vs paper)")
    rows = []
    for layout, s in data["summary"].items():
        paper = PAPER_SUMMARY.get(layout)
        paper_txt = f"({paper[0]:+.0f}/{paper[1]:+.0f}/{paper[2]:+.0f})" if paper else ""
        rows.append(
            [
                layout,
                f"{s['throughput_improvement_pct']:+.1f}%",
                f"{s['avg_latency_reduction_pct']:+.1f}%",
                f"{s['zero_load_latency_reduction_pct']:+.1f}%",
                f"{s['power_reduction_pct']:+.1f}%",
                paper_txt,
            ]
        )
    print(
        format_table(
            ["layout", "thpt", "avg lat red.", "zero-load red.", "power red.", "paper(t/l/z)"],
            rows,
        )
    )
    print()
    print("Figure 7(c): power (W) vs injection rate")
    rows = []
    for i, rate in enumerate(data["rates"]):
        row = [f"{rate:.3f}"]
        for layout in data["curves"]:
            row.append(f"{data['curves'][layout][i]['power_w']:.1f}")
        rows.append(row)
    print(format_table(headers, rows))


if __name__ == "__main__":
    main(fast=False)
