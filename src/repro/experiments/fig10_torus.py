"""Figure 10: heterogeneity in a mesh vs an edge-symmetric torus.

The paper drives an 8x8 mesh and an 8x8 torus with its application
workloads and reports the latency reduction of the Diagonal+BL
heterogeneous layout over each topology's homogeneous baseline: torus
benefits are on average ~44 % smaller, because wrap-around links spread
the load and roughly half the flows bypass the extra central resources.

We use the workload-profile packet streams (request/response pairs
between cores and home L2 banks) on the network alone, the same
abstraction the paper's network-only studies use.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.core.layouts import baseline_layout, layout_by_name
from repro.core.layouts import build_network
from repro.experiments.common import format_table, measurement_scale, percent_reduction
from repro.noc.network import Network
from repro.noc.topology import Mesh, Torus
from repro.traffic.workloads import WORKLOADS, app_packet_stream

DEFAULT_WORKLOADS = (
    "SAP",
    "SPECjbb",
    "TPC-C",
    "SJAS",
    "frrt",
    "fsim",
    "vips",
    "canl",
    "ddup",
    "sclst",
)


def run_app_traffic(
    network: Network,
    workload_name: str,
    rate: float,
    warmup_packets: int,
    measure_packets: int,
    seed: int,
    drain_cycle_cap: int = 100_000,
) -> float:
    """Drive the network with a workload's packet stream; mean latency (cycles).

    ``rate`` is the aggregate packet-injection probability per node per
    cycle (requests and responses both count as packets).
    """
    stream = app_packet_stream(WORKLOADS[workload_name], network.topology.num_nodes, seed)
    rng = random.Random(seed * 7 + 1)
    created = 0
    target = warmup_packets + measure_packets
    network.reset_stats()
    nodes = network.topology.num_nodes
    while created < target:
        for _ in range(nodes):
            if rng.random() >= rate:
                continue
            if created >= target:
                break
            src, dst, bits = next(stream)
            packet = network.make_packet(src, dst, payload_bits=bits)
            if created >= warmup_packets:
                packet.measured = True
                if not network.measuring:
                    network.begin_measurement()
            network.enqueue(packet)
            created += 1
        network.step()
    network.end_measurement()
    deadline = network.cycle + drain_cycle_cap
    while len(network.stats.records) < measure_packets and network.cycle < deadline:
        network.step()
    return network.stats.avg_latency_cycles


def run_uniform_random(
    rate: float = 0.035,
    fast: bool = True,
    seed: int = 17,
) -> Dict[str, float]:
    """Mesh-vs-torus comparison under plain UR traffic.

    A second, simpler view of the same question: at a moderate uniform
    load, how much does Diagonal+BL improve latency on each topology?
    The four (topology, layout) combinations run as independent sweep
    points through :func:`repro.exec.run_sweep`.
    """
    from repro.exec import SweepPoint, run_sweep

    scale = measurement_scale(fast)
    combos = [
        (topo_name, layout_name)
        for topo_name in ("mesh", "torus")
        for layout_name in ("baseline", "diagonal+BL")
    ]
    results = run_sweep(
        [
            SweepPoint(
                layout=layout_name,
                topology=topo_name,
                pattern="uniform_random",
                rate=rate,
                seed=seed,
                warmup_packets=scale["warmup_packets"],
                measure_packets=scale["measure_packets"],
            )
            for topo_name, layout_name in combos
        ]
    )
    latencies: Dict[str, Dict[str, float]] = {"mesh": {}, "torus": {}}
    for (topo_name, layout_name), result in zip(combos, results):
        latencies[topo_name][layout_name] = result.latency_cycles
    return {
        "mesh_reduction_pct": percent_reduction(
            latencies["mesh"]["diagonal+BL"], latencies["mesh"]["baseline"]
        ),
        "torus_reduction_pct": percent_reduction(
            latencies["torus"]["diagonal+BL"], latencies["torus"]["baseline"]
        ),
    }


def run(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    rate: float = 0.05,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, object]:
    scale = measurement_scale(fast)
    hetero = layout_by_name("diagonal+BL")
    base = baseline_layout()
    reductions: Dict[str, Dict[str, float]] = {"mesh": {}, "torus": {}}
    for topo_name in ("mesh", "torus"):
        for workload in workloads:
            results = {}
            for layout in (base, hetero):
                topology = (
                    Mesh(layout.mesh_size)
                    if topo_name == "mesh"
                    else Torus(layout.mesh_size)
                )
                network = build_network(layout, topology=topology)
                results[layout.name] = run_app_traffic(
                    network, workload, rate, scale["warmup_packets"],
                    scale["measure_packets"], seed,
                )
            reductions[topo_name][workload] = percent_reduction(
                results["diagonal+BL"], results["baseline"]
            )
    mesh_avg = sum(reductions["mesh"].values()) / len(workloads)
    torus_avg = sum(reductions["torus"].values()) / len(workloads)
    return {
        "reductions": reductions,
        "mesh_avg_reduction_pct": mesh_avg,
        "torus_avg_reduction_pct": torus_avg,
        "torus_benefit_deficit_pct": (
            100.0 * (1.0 - torus_avg / mesh_avg) if mesh_avg else float("nan")
        ),
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    rows = [
        [
            w,
            f"{data['reductions']['mesh'][w]:+.1f}%",
            f"{data['reductions']['torus'][w]:+.1f}%",
        ]
        for w in data["reductions"]["mesh"]
    ]
    rows.append(
        [
            "average",
            f"{data['mesh_avg_reduction_pct']:+.1f}%",
            f"{data['torus_avg_reduction_pct']:+.1f}%",
        ]
    )
    print(
        format_table(
            ["workload", "mesh latency red.", "torus latency red."],
            rows,
            "Figure 10: Diagonal+BL latency reduction over homogeneous baseline",
        )
    )
    print(
        f"\ntorus benefit smaller by {data['torus_benefit_deficit_pct']:.0f}% "
        "(paper: ~44% smaller)"
    )
    ur = run_uniform_random(fast=fast)
    print(
        f"UR cross-check: mesh {ur['mesh_reduction_pct']:+.1f}% vs "
        f"torus {ur['torus_reduction_pct']:+.1f}% latency reduction"
    )


if __name__ == "__main__":
    main(fast=False)
