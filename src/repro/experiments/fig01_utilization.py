"""Figure 1: buffer and link utilization heat maps on an 8x8 mesh.

The paper runs the baseline homogeneous network near saturation (~6 %
packets/node/cycle) with uniform-random traffic and shows that central
routers reach ~75 % buffer/link utilization while peripheral routers sit
near ~35 %, with corners slightly hotter than their row/column peers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exec import SweepPoint, run_sweep
from repro.experiments.common import format_table, measurement_scale


def run(
    rate: float = 0.055,
    mesh_size: int = 8,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, object]:
    """Returns per-router buffer and link utilization grids (fractions)."""
    scale = measurement_scale(fast)
    point = SweepPoint(
        layout="baseline",
        mesh_size=mesh_size,
        pattern="uniform_random",
        rate=rate,
        seed=seed,
        warmup_packets=scale["warmup_packets"],
        measure_packets=scale["measure_packets"],
    )
    result = run_sweep([point])[0]
    n = mesh_size
    buffer_grid = [result.buffer_utilization[r * n:(r + 1) * n] for r in range(n)]
    link_grid = [result.link_utilization[r * n:(r + 1) * n] for r in range(n)]
    return {
        "rate": rate,
        "buffer_utilization": buffer_grid,
        "link_utilization": link_grid,
        "center_buffer_util": _region_mean(buffer_grid, center=True),
        "edge_buffer_util": _region_mean(buffer_grid, center=False),
        "center_link_util": _region_mean(link_grid, center=True),
        "edge_link_util": _region_mean(link_grid, center=False),
    }


def _region_mean(grid: List[List[float]], center: bool) -> float:
    """Mean over the central quarter (or the boundary ring) of the grid."""
    n = len(grid)
    lo, hi = n // 4, n - n // 4
    values = []
    for r in range(n):
        for c in range(n):
            in_center = lo <= r < hi and lo <= c < hi
            if in_center == center:
                values.append(grid[r][c])
    return sum(values) / len(values)


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    for key, label in (
        ("buffer_utilization", "Buffer utilization (%)"),
        ("link_utilization", "Link utilization (%)"),
    ):
        grid = data[key]
        rows = [
            [f"{100 * cell:5.1f}" for cell in row] for row in grid
        ]
        print(format_table([f"c{c}" for c in range(len(grid))], rows, label))
        print()
    print(
        "center vs edge buffer util: "
        f"{100 * data['center_buffer_util']:.1f}% vs "
        f"{100 * data['edge_buffer_util']:.1f}%  "
        "(paper: ~75% vs ~35%)"
    )


if __name__ == "__main__":
    main(fast=False)
