"""Figure 13: co-evaluation with memory-controller placement (Section 6).

Follows Abts et al.: 16 memory controllers placed either in a *diamond*
lattice or along the mesh *diagonals*, combined with the homogeneous
baseline or the Diagonal+BL HeteroNoC (whose big routers then coincide
with the diagonal controllers).  Four configurations:

* ``corners_homo``    -- Table 2 reference: 4 corner MCs, homogeneous net;
* ``diamond_homo``    -- Abts et al.'s design (paper: -8 % round trip);
* ``diamond_hetero``  -- diamond MCs on Diagonal+BL (paper: -22 %);
* ``diagonal_hetero`` -- diagonal MCs on Diagonal+BL (paper: -28 %, and
  the lowest request-latency variance, 0.46 vs 0.66 normalized std).

Two workload modes, as in the paper: a closed-loop uniform-random mode
(each node keeps up to 16 requests outstanding, mirroring MSHR behaviour)
and the full-CMP application mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cmp import CmpSystem
from repro.cmp.system import CmpConfig
from repro.core.layouts import (
    build_network,
    layout_by_name,
    memory_controller_placement,
)
from repro.experiments.common import format_table, percent_reduction
from repro.traffic.workloads import WORKLOADS, generate_core_trace

CONFIGURATIONS = {
    "corners_homo": ("corners", "baseline"),
    "diamond_homo": ("diamond", "baseline"),
    "diamond_hetero": ("diamond", "diagonal+BL"),
    "diagonal_hetero": ("diagonal", "diagonal+BL"),
}

PAPER_REDUCTIONS = {"diamond_homo": 8.0, "diamond_hetero": 22.0, "diagonal_hetero": 28.0}


@dataclass
class ClosedLoopResult:
    """Round-trip statistics of the UR closed-loop run."""

    mean_latency: float
    std_latency: float
    requests: int

    @property
    def normalized_std(self) -> float:
        return self.std_latency / self.mean_latency if self.mean_latency else 0.0


def run_closed_loop_ur(
    mc_placement: str,
    layout_name: str,
    num_requests: int = 2000,
    max_outstanding: int = 4,
    dram_latency: int = 60,
    seed: int = 13,
    max_cycles: int = 300_000,
) -> ClosedLoopResult:
    """Closed-loop UR: every node keeps requests to the MCs in flight.

    Requests are 1-flit address packets to an interleave-selected memory
    controller; responses are data packets.  ``dram_latency`` is kept
    shorter than the 400-cycle DRAM to keep the closed loop
    network-sensitive (the paper's Figure 13(b) latencies are
    network-dominated).
    """
    layout = layout_by_name(layout_name)
    network = build_network(layout)
    mcs = memory_controller_placement(mc_placement, layout.mesh_size)
    rng = random.Random(seed)
    num_nodes = network.topology.num_nodes
    outstanding = [0] * num_nodes
    issued = [0] * num_nodes
    request_start: Dict[int, int] = {}
    latencies: List[int] = []
    # (ready_cycle, mc, node, token)
    pending_responses: List[Tuple[int, int, int, int]] = []
    per_node = num_requests // num_nodes
    request_counter = [0]

    def on_delivery(packet, cycle: int) -> None:
        kind, node, token = packet.payload
        if kind == "request":
            # Arrived at the MC; respond after the DRAM latency.
            pending_responses.append((cycle + dram_latency, packet.dst, node, token))
        else:
            latencies.append(cycle - request_start.pop(token))
            outstanding[node] -= 1

    network.on_delivery = on_delivery
    network.begin_measurement()
    while len(latencies) < per_node * num_nodes:
        if network.cycle >= max_cycles:
            raise RuntimeError("closed-loop run failed to complete; deadlock?")
        for node in range(num_nodes):
            while outstanding[node] < max_outstanding and issued[node] < per_node:
                mc = mcs[rng.randrange(len(mcs))]
                if mc == node:
                    mc = mcs[(mcs.index(mc) + 1) % len(mcs)]
                token = request_counter[0]
                request_counter[0] += 1
                request_start[token] = network.cycle
                packet = network.make_packet(
                    node, mc, payload_bits=64, packet_class="mem_request",
                    payload=("request", node, token),
                )
                network.enqueue(packet)
                outstanding[node] += 1
                issued[node] += 1
        # Fire DRAM responses that are ready.
        still = []
        for ready, mc, node, token in pending_responses:
            if ready <= network.cycle:
                packet = network.make_packet(
                    mc, node, payload_bits=1024, packet_class="mem_response",
                    payload=("response", node, token),
                )
                network.enqueue(packet)
            else:
                still.append((ready, mc, node, token))
        pending_responses[:] = still
        network.step()
    network.end_measurement()
    mean = sum(latencies) / len(latencies)
    var = sum((l - mean) ** 2 for l in latencies) / len(latencies)
    return ClosedLoopResult(
        mean_latency=mean, std_latency=var**0.5, requests=len(latencies)
    )


def run_workload(
    mc_placement: str,
    layout_name: str,
    workload: str,
    records_per_core: int = 250,
    seed: int = 13,
) -> Dict[str, float]:
    """Full-CMP run; memory round-trip latency statistics."""
    layout = layout_by_name(layout_name)
    profile = WORKLOADS[workload]
    traces = {
        core: generate_core_trace(profile, core, records_per_core, seed=seed)
        for core in range(layout.mesh_size**2)
    }
    system = CmpSystem(layout, traces, config=CmpConfig(mc_placement=mc_placement))
    system.warm_caches()
    system.run(max_cycles=400_000)
    return system.miss_latency_stats(via_memory_only=True)


def run(
    workloads: Sequence[str] = ("SPECjbb", "frrt"),
    fast: bool = True,
    seed: int = 13,
) -> Dict[str, object]:
    num_requests = 1500 if fast else 6400
    records = 200 if fast else 500
    ur: Dict[str, ClosedLoopResult] = {}
    for config_name, (placement, layout_name) in CONFIGURATIONS.items():
        ur[config_name] = run_closed_loop_ur(
            placement, layout_name, num_requests=num_requests, seed=seed
        )
    apps: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        apps[workload] = {
            config_name: run_workload(
                placement, layout_name, workload, records_per_core=records, seed=seed
            )
            for config_name, (placement, layout_name) in CONFIGURATIONS.items()
        }
    reference = ur["corners_homo"].mean_latency
    ur_reductions = {
        name: percent_reduction(result.mean_latency, reference)
        for name, result in ur.items()
        if name != "corners_homo"
    }
    return {"ur": ur, "apps": apps, "ur_reductions": ur_reductions}


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    print("Figure 13(a): UR closed-loop request-response latency")
    rows = [
        [
            name,
            f"{result.mean_latency:.1f}",
            f"{result.normalized_std:.2f}",
            f"{data['ur_reductions'].get(name, 0.0):+.1f}%",
            f"({PAPER_REDUCTIONS.get(name, 0.0):+.0f}%)" if name in PAPER_REDUCTIONS else "(ref)",
        ]
        for name, result in data["ur"].items()
    ]
    print(
        format_table(
            ["config", "mean lat (cyc)", "norm. std", "reduction", "paper"], rows
        )
    )
    print()
    print("Figure 13(b): per-workload memory round-trip latency (CMP mode)")
    rows = []
    for workload, configs in data["apps"].items():
        for name, stats in configs.items():
            rows.append(
                [workload, name, f"{stats['mean']:.1f}", f"{stats['normalized_std']:.2f}"]
            )
    print(format_table(["workload", "config", "mean", "norm. std"], rows))


if __name__ == "__main__":
    main(fast=False)
