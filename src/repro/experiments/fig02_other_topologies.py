"""Figure 2: non-uniform buffer utilization in other topologies.

Shows that the non-uniformity of Figure 1 is a property of any
non-edge-symmetric network under deterministic routing: a 4x4 concentrated
mesh (concentration 4) and a 64-node flattened butterfly (16 routers) both
exhibit hotter central/intermediate routers under uniform-random traffic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import format_table, measurement_scale
from repro.noc.config import RouterConfig
from repro.noc.network import Network
from repro.noc.topology import ConcentratedMesh, FlattenedButterfly
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


def _run_topology(topology, rate: float, fast: bool, seed: int):
    configs = {rid: RouterConfig() for rid in range(topology.num_routers)}
    network = Network(topology, configs)
    pattern = UniformRandom(topology.num_nodes)
    result = run_synthetic(
        network, pattern, rate, seed=seed, **measurement_scale(fast)
    )
    stats = result.stats
    side = topology.width
    grid = [
        [stats.buffer_utilization(r * side + c) for c in range(side)]
        for r in range(side)
    ]
    return grid


def run(
    rate_cmesh: float = 0.03,
    rate_fbfly: float = 0.05,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, List[List[float]]]:
    """Buffer-utilization grids for the two topologies.

    Rates are per *node*; the concentrated topologies aggregate 4 nodes
    per router, so these correspond to moderately loaded networks.
    """
    cmesh_grid = _run_topology(
        ConcentratedMesh(4, concentration=4), rate_cmesh, fast, seed
    )
    fbfly_grid = _run_topology(
        FlattenedButterfly(4, concentration=4), rate_fbfly, fast, seed
    )

    def spread(grid):
        flat = [cell for row in grid for cell in row]
        return max(flat), min(flat)

    cmesh_hi, cmesh_lo = spread(cmesh_grid)
    fbfly_hi, fbfly_lo = spread(fbfly_grid)
    return {
        "cmesh_buffer_utilization": cmesh_grid,
        "fbfly_buffer_utilization": fbfly_grid,
        "cmesh_max_min": (cmesh_hi, cmesh_lo),
        "fbfly_max_min": (fbfly_hi, fbfly_lo),
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    for key, label in (
        ("cmesh_buffer_utilization", "Concentrated mesh buffer utilization (%)"),
        ("fbfly_buffer_utilization", "Flattened butterfly buffer utilization (%)"),
    ):
        grid = data[key]
        rows = [[f"{100 * cell:5.1f}" for cell in row] for row in grid]
        print(format_table([f"c{c}" for c in range(len(grid))], rows, label))
        print()
    hi, lo = data["cmesh_max_min"]
    print(f"cmesh spread: {100 * hi:.1f}% max vs {100 * lo:.1f}% min (paper: ~75 vs ~60)")
    hi, lo = data["fbfly_max_min"]
    print(f"fbfly spread: {100 * hi:.1f}% max vs {100 * lo:.1f}% min (paper: ~60 vs ~40)")


if __name__ == "__main__":
    main(fast=False)
