"""Figure 2: non-uniform buffer utilization in other topologies.

Shows that the non-uniformity of Figure 1 is a property of any
non-edge-symmetric network under deterministic routing: a 4x4 concentrated
mesh (concentration 4) and a 64-node flattened butterfly (16 routers) both
exhibit hotter central/intermediate routers under uniform-random traffic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exec import SweepPoint, run_sweep
from repro.experiments.common import format_table, measurement_scale


def run(
    rate_cmesh: float = 0.03,
    rate_fbfly: float = 0.05,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, List[List[float]]]:
    """Buffer-utilization grids for the two topologies.

    Rates are per *node*; the concentrated topologies aggregate 4 nodes
    per router, so these correspond to moderately loaded networks.  Both
    topologies run as independent sweep points (homogeneous generic
    routers, see :class:`repro.exec.SweepPoint`).
    """
    scale = measurement_scale(fast)
    points = [
        SweepPoint(
            layout=None,
            topology=topo,
            mesh_size=4,
            concentration=4,
            pattern="uniform_random",
            rate=rate,
            seed=seed,
            warmup_packets=scale["warmup_packets"],
            measure_packets=scale["measure_packets"],
        )
        for topo, rate in (("cmesh", rate_cmesh), ("fbfly", rate_fbfly))
    ]
    cmesh_result, fbfly_result = run_sweep(points)

    def grid_of(result, side=4):
        return [
            result.buffer_utilization[r * side:(r + 1) * side]
            for r in range(side)
        ]

    cmesh_grid = grid_of(cmesh_result)
    fbfly_grid = grid_of(fbfly_result)

    def spread(grid):
        flat = [cell for row in grid for cell in row]
        return max(flat), min(flat)

    cmesh_hi, cmesh_lo = spread(cmesh_grid)
    fbfly_hi, fbfly_lo = spread(fbfly_grid)
    return {
        "cmesh_buffer_utilization": cmesh_grid,
        "fbfly_buffer_utilization": fbfly_grid,
        "cmesh_max_min": (cmesh_hi, cmesh_lo),
        "fbfly_max_min": (fbfly_hi, fbfly_lo),
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    for key, label in (
        ("cmesh_buffer_utilization", "Concentrated mesh buffer utilization (%)"),
        ("fbfly_buffer_utilization", "Flattened butterfly buffer utilization (%)"),
    ):
        grid = data[key]
        rows = [[f"{100 * cell:5.1f}" for cell in row] for row in grid]
        print(format_table([f"c{c}" for c in range(len(grid))], rows, label))
        print()
    hi, lo = data["cmesh_max_min"]
    print(f"cmesh spread: {100 * hi:.1f}% max vs {100 * lo:.1f}% min (paper: ~75 vs ~60)")
    hi, lo = data["fbfly_max_min"]
    print(f"fbfly spread: {100 * hi:.1f}% max vs {100 * lo:.1f}% min (paper: ~60 vs ~40)")


if __name__ == "__main__":
    main(fast=False)
