"""Resilience study: graceful degradation under permanent router faults.

The HeteroNoC concentrates bandwidth in a few big routers along the mesh
diagonals, which raises an obvious robustness question the paper does not
measure: what happens when routers *fail*?  A heterogeneous design has
more to lose per router -- killing a big router removes 6-VC/256b
capacity, and a targeted adversary would go straight for the diagonal.

This harness kills 0..4 routers along the main diagonal (all of them big
routers in the ``diagonal+BL`` HeteroNoC, ordinary small routers in the
homogeneous baseline), reroutes the survivors around the holes with the
fault-aware routing layer, and recovers in-flight casualties with NI
retransmission.  For each fault count it reports

* average latency of the *delivered* measured packets,
* accepted throughput inside the measurement window (the saturation /
  degradation curve the tests assert is monotone non-increasing),
* the delivered fraction of measured packets (the rest are explicit
  losses -- packets whose destination node sits on a dead router), and
* retransmission-layer activity.

The kill sets are nested (``order[:k]``) and every point shares one
seed, so the curves are directly comparable and the degradation is
attributable to the faults alone.  Points run through
:func:`repro.exec.run_sweep`, demonstrating that faulty configs cache
and parallelize like any other sweep point.

Usage::

    python -m repro.experiments.resilience            # fast scale
    python -m repro.experiments.resilience --full     # paper scale
    python -m repro.experiments.resilience --smoke    # CI smoke (tiny)
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from repro.core.layouts import diagonal_positions
from repro.exec import SweepPoint, run_sweep
from repro.experiments.common import format_table, measurement_scale
from repro.faults import kill_routers

#: the two designs under comparison: homogeneous mesh vs the paper's
#: buffers-and-links HeteroNoC.
LAYOUTS = ("baseline", "diagonal+BL")

#: retransmission knobs for the study: a short, bounded recovery so a
#: packet aimed at a dead router is declared lost within ~3k cycles
#: instead of backing off for hundreds of thousands.
RETRY_KNOBS = dict(retransmit_timeout=512, max_retries=2, backoff_factor=1.5)


def kill_order(mesh_size: int) -> List[int]:
    """Interior main-diagonal routers, nearest the center first.

    Every one of these is a big router under the diagonal layouts, so
    the same kill list is "targeted at the big routers" on the HeteroNoC
    and a plain interior kill on the homogeneous baseline.  Interior
    routers are chosen (never the corners) so each kill punches a hole
    the XY detour actually has to route around.
    """
    n = mesh_size
    interior = [i * (n + 1) for i in range(1, n - 1)]
    big = diagonal_positions(n)
    assert all(r in big for r in interior)
    center = (n - 1) / 2
    interior.sort(key=lambda r: (abs(r // n - center) + abs(r % n - center), r))
    return interior


def run(
    fault_counts: Sequence[int] = (0, 1, 2, 3, 4),
    rate: float = 0.08,
    mesh_size: int = 8,
    fast: bool = True,
    seed: int = 11,
    measure_packets: Optional[int] = None,
) -> Dict[str, object]:
    scale = measurement_scale(fast)
    if measure_packets is not None:
        scale["measure_packets"] = measure_packets
        scale["warmup_packets"] = max(50, measure_packets // 6)
    order = kill_order(mesh_size)
    if max(fault_counts) > len(order):
        raise ValueError(
            f"at most {len(order)} routers in the kill order for a "
            f"{mesh_size}x{mesh_size} mesh"
        )
    points = []
    for layout in LAYOUTS:
        for k in fault_counts:
            faults = kill_routers(order[:k], at=0, **RETRY_KNOBS) if k else None
            points.append(
                SweepPoint(
                    layout=layout,
                    mesh_size=mesh_size,
                    pattern="uniform_random",
                    rate=rate,
                    seed=seed,
                    warmup_packets=scale["warmup_packets"],
                    measure_packets=scale["measure_packets"],
                    drain_cycle_cap=60_000,
                    faults=faults,
                )
            )
    results = run_sweep(points)
    curves: Dict[str, List[Dict[str, object]]] = {}
    index = 0
    for layout in LAYOUTS:
        rows: List[Dict[str, object]] = []
        for k in fault_counts:
            result = results[index]
            index += 1
            offered = result.measured_packets + result.lost_measured_packets
            res = result.resilience or {}
            rows.append(
                {
                    "faults": k,
                    "killed": order[:k],
                    "latency_ns": result.latency_ns,
                    "throughput": result.throughput,
                    "delivered": result.measured_packets,
                    "lost": result.lost_measured_packets,
                    "delivered_fraction": (
                        result.measured_packets / offered if offered else 0.0
                    ),
                    "retransmissions": res.get("retransmissions", 0),
                    "saturated": result.saturated,
                }
            )
        curves[layout] = rows
    return {
        "rate": rate,
        "mesh_size": mesh_size,
        "kill_order": order,
        "curves": curves,
    }


def main(fast: bool = True, **kwargs) -> None:
    data = run(fast=fast, **kwargs)
    print(
        f"Resilience: permanent router kills on the "
        f"{data['mesh_size']}x{data['mesh_size']} mesh "
        f"(UR @ {data['rate']} packets/node/cycle; "
        f"kill order {data['kill_order'][:4]}...)"
    )
    print(
        "Faults target the main diagonal: big routers on the HeteroNoC, "
        "small on the baseline.\n"
    )
    for layout, rows in data["curves"].items():
        print(f"{layout}:")
        table_rows = [
            [
                row["faults"],
                f"{row['latency_ns']:.1f}",
                f"{row['throughput']:.4f}",
                f"{row['delivered_fraction']:.3f}",
                row["lost"],
                row["retransmissions"],
                "yes" if row["saturated"] else "no",
            ]
            for row in rows
        ]
        print(
            format_table(
                [
                    "killed",
                    "latency ns",
                    "throughput",
                    "delivered",
                    "lost",
                    "retx",
                    "saturated",
                ],
                table_rows,
            )
        )
        print()


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        main(fast=True, fault_counts=(0, 2, 4), measure_packets=200)
    else:
        main(fast="--full" not in argv)
