"""Ablations of HeteroNoC's individual mechanisms.

DESIGN.md calls out three design choices worth isolating; this harness
measures each on the Diagonal+BL layout under UR traffic:

* **flit merging** (Section 3.2/3.3) -- rerun with the wide-link second
  grant disabled: wide links then carry one flit per cycle, exposing how
  much of the +BL gain the merging machinery provides;
* **flit accounting** -- paper mode (6-flit packets, double-pumped wide
  links) vs the physically strict 128-bit mode (8-flit packets), the
  interpretation gap analyzed in EXPERIMENTS.md;
* **placement** -- the same router mix scattered deterministically
  off-diagonal, isolating *where* from *what* (the paper's own Figure 3
  comparison, reduced to its essence).
"""

from __future__ import annotations

from typing import Dict

from repro.exec import SweepPoint, run_sweep
from repro.experiments.common import measurement_scale, format_table


def _scattered_positions(n: int, num_big: int = None) -> set:
    """A deterministic low-traffic placement: fill from the mesh corners
    inward along the boundary (the anti-diagonal of the paper's advice)."""
    num_big = num_big if num_big is not None else 2 * n
    boundary = [
        r * n + c
        for r in range(n)
        for c in range(n)
        if r in (0, n - 1) or c in (0, n - 1)
    ]
    boundary.sort(key=lambda rid: (min(rid // n, n - 1 - rid // n)
                                   + min(rid % n, n - 1 - rid % n), rid))
    return set(boundary[:num_big])


def run(
    rate: float = 0.05,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, Dict[str, float]]:
    scale = measurement_scale(fast)
    common = dict(
        pattern="uniform_random",
        rate=rate,
        seed=seed,
        warmup_packets=scale["warmup_packets"],
        measure_packets=scale["measure_packets"],
    )
    variant_points = {
        "baseline": SweepPoint(layout="baseline", **common),
        "diagonal+BL": SweepPoint(layout="diagonal+BL", **common),
        "diagonal+BL/no-merging": SweepPoint(
            layout="diagonal+BL", flit_merging=False, **common
        ),
        "diagonal+BL/strict-flits": SweepPoint(
            layout="diagonal+BL", flit_mode="strict", **common
        ),
        "scattered+BL": SweepPoint(
            layout=None,
            big_positions=tuple(_scattered_positions(8)),
            **common,
        ),
    }
    results = run_sweep(list(variant_points.values()))
    return {
        name: {
            "latency_cycles": result.latency_cycles,
            "latency_ns": result.latency_ns,
            "throughput": result.throughput,
            "power_w": result.power_w,
            "merge_fraction": result.merge_fraction,
        }
        for name, result in zip(variant_points, results)
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    rows = [
        [
            name,
            f"{v['latency_ns']:.1f}",
            f"{v['throughput']:.4f}",
            f"{v['power_w']:.1f}",
            f"{100 * v['merge_fraction']:.0f}%",
        ]
        for name, v in data.items()
    ]
    print(
        format_table(
            ["variant", "latency ns", "throughput", "power W", "merged"],
            rows,
            "Mechanism ablations (UR @ 0.05)",
        )
    )


if __name__ == "__main__":
    main(fast=False)
