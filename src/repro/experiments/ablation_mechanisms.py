"""Ablations of HeteroNoC's individual mechanisms.

DESIGN.md calls out three design choices worth isolating; this harness
measures each on the Diagonal+BL layout under UR traffic:

* **flit merging** (Section 3.2/3.3) -- rerun with the wide-link second
  grant disabled: wide links then carry one flit per cycle, exposing how
  much of the +BL gain the merging machinery provides;
* **flit accounting** -- paper mode (6-flit packets, double-pumped wide
  links) vs the physically strict 128-bit mode (8-flit packets), the
  interpretation gap analyzed in EXPERIMENTS.md;
* **placement** -- the same router mix scattered deterministically
  off-diagonal, isolating *where* from *what* (the paper's own Figure 3
  comparison, reduced to its essence).
"""

from __future__ import annotations

from typing import Dict

from repro.core.layouts import (
    build_network,
    custom_layout,
    layout_by_name,
)
from repro.core.merging import merge_report
from repro.core.power import network_power_breakdown
from repro.experiments.common import measurement_scale, format_table
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


def _scattered_positions(n: int, num_big: int = None) -> set:
    """A deterministic low-traffic placement: fill from the mesh corners
    inward along the boundary (the anti-diagonal of the paper's advice)."""
    num_big = num_big if num_big is not None else 2 * n
    boundary = [
        r * n + c
        for r in range(n)
        for c in range(n)
        if r in (0, n - 1) or c in (0, n - 1)
    ]
    boundary.sort(key=lambda rid: (min(rid // n, n - 1 - rid // n)
                                   + min(rid % n, n - 1 - rid % n), rid))
    return set(boundary[:num_big])


def run(
    rate: float = 0.05,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, Dict[str, float]]:
    scale = measurement_scale(fast)
    variants = {}

    def measure(name, network, frequency):
        result = run_synthetic(
            network, UniformRandom(network.topology.num_nodes), rate,
            seed=seed, **scale,
        )
        power = network_power_breakdown(network, result.stats)
        variants[name] = {
            "latency_cycles": result.stats.avg_latency_cycles,
            "latency_ns": result.avg_latency_ns(frequency),
            "throughput": result.throughput_packets_per_node_cycle,
            "power_w": power["total"],
            "merge_fraction": merge_report(network, result.stats).merge_fraction,
        }

    baseline = layout_by_name("baseline")
    measure("baseline", build_network(baseline), baseline.frequency_ghz)

    diagonal = layout_by_name("diagonal+BL")
    measure("diagonal+BL", build_network(diagonal), diagonal.frequency_ghz)
    measure(
        "diagonal+BL/no-merging",
        build_network(diagonal, flit_merging=False),
        diagonal.frequency_ghz,
    )
    measure(
        "diagonal+BL/strict-flits",
        build_network(diagonal, flit_mode="strict"),
        diagonal.frequency_ghz,
    )

    scattered = custom_layout(
        "scattered+BL", _scattered_positions(diagonal.mesh_size), mesh_size=8
    )
    measure("scattered+BL", build_network(scattered), scattered.frequency_ghz)
    return variants


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    rows = [
        [
            name,
            f"{v['latency_ns']:.1f}",
            f"{v['throughput']:.4f}",
            f"{v['power_w']:.1f}",
            f"{100 * v['merge_fraction']:.0f}%",
        ]
        for name, v in data.items()
    ]
    print(
        format_table(
            ["variant", "latency ns", "throughput", "power W", "merged"],
            rows,
            "Mechanism ablations (UR @ 0.05)",
        )
    )


if __name__ == "__main__":
    main(fast=False)
