"""Table 1: homogeneous vs heterogeneous router characteristics.

Reproduces the paper's router comparison -- power (at the 50 % activity
reference), area and frequency for the baseline, small and big routers --
and the network-level buffer accounting: both networks hold 4,800 buffer
slots, but the heterogeneous slots are 128 b instead of 192 b, a 33 %
reduction in storage bits (921,600 -> 614,400).
"""

from __future__ import annotations

from typing import Dict

from repro.core.hetero import (
    buffer_reduction_fraction,
    total_buffer_bits,
    total_buffer_flits,
    total_vcs,
)
from repro.core.layouts import baseline_layout, layout_by_name
from repro.core.power import (
    RouterPowerModel,
    router_area_mm2,
    router_frequency_ghz,
)
from repro.experiments.common import format_table
from repro.noc.config import baseline_router, big_router, small_router


def run() -> Dict[str, object]:
    model = RouterPowerModel()
    routers = {
        "baseline (3VC/192b)": baseline_router(),
        "small (2VC/128b)": small_router(),
        "big (6VC/256b)": big_router(),
    }
    rows = {}
    for label, config in routers.items():
        rows[label] = {
            "power_w": model.table1_power(config),
            "area_mm2": router_area_mm2(config),
            "frequency_ghz": router_frequency_ghz(config.num_vcs),
        }

    base_configs = baseline_layout().router_configs()
    hetero_configs = layout_by_name("diagonal+BL").router_configs("strict")
    accounting = {
        "baseline_buffer_slots": total_buffer_flits(base_configs),
        "hetero_buffer_slots": total_buffer_flits(hetero_configs),
        "baseline_buffer_bits": total_buffer_bits(base_configs),
        "hetero_buffer_bits": total_buffer_bits(hetero_configs),
        "baseline_total_vcs": total_vcs(base_configs),
        "hetero_total_vcs": total_vcs(hetero_configs),
        "buffer_bit_reduction": buffer_reduction_fraction(
            hetero_configs, base_configs
        ),
    }
    return {"routers": rows, "accounting": accounting}


PAPER_VALUES = {
    "baseline (3VC/192b)": (0.67, 0.290, 2.20),
    "small (2VC/128b)": (0.30, 0.235, 2.25),
    "big (6VC/256b)": (1.19, 0.425, 2.07),
}


def main() -> None:
    data = run()
    rows = []
    for label, values in data["routers"].items():
        paper_p, paper_a, paper_f = PAPER_VALUES[label]
        rows.append(
            [
                label,
                f"{values['power_w']:.2f} ({paper_p:.2f})",
                f"{values['area_mm2']:.3f} ({paper_a:.3f})",
                f"{values['frequency_ghz']:.2f} ({paper_f:.2f})",
            ]
        )
    print(
        format_table(
            ["router", "power W (paper)", "area mm2 (paper)", "freq GHz (paper)"],
            rows,
            "Table 1: router characteristics, modelled (paper)",
        )
    )
    acc = data["accounting"]
    print()
    print(f"buffer slots: {acc['baseline_buffer_slots']} -> {acc['hetero_buffer_slots']} (paper: 4800 -> 4800)")
    print(f"buffer bits : {acc['baseline_buffer_bits']} -> {acc['hetero_buffer_bits']} (paper: 921600 -> 614400)")
    print(f"total VCs   : {acc['baseline_total_vcs']} -> {acc['hetero_total_vcs']} (constant by construction)")
    print(f"buffer-bit reduction: {100 * acc['buffer_bit_reduction']:.1f}% (paper: 33%)")


if __name__ == "__main__":
    main()
