"""Figure 8: latency and power breakdowns under UR traffic.

(a) network latency split into blocking, queuing and transfer components,
    normalized to the baseline -- HeteroNoC's gains come from queuing and
    blocking reductions;
(b) power split into links, crossbar, arbiters+logic and buffers -- the
    +BL savings come mostly from buffers (33 % fewer bits) and the
    narrower small-router crossbars.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import format_table, sweep_layouts

BREAKDOWN_LAYOUTS = ("baseline", "center+BL", "diagonal+BL", "row2_5+BL")


def run(
    rate: float = 0.045,
    layouts: Sequence[str] = BREAKDOWN_LAYOUTS,
    fast: bool = True,
    seed: int = 11,
) -> Dict[str, object]:
    samples = sweep_layouts(layouts, "uniform_random", [rate], fast=fast, seed=seed)
    latency = {}
    power = {}
    for layout in layouts:
        sample = samples[layout][0]
        latency[layout] = {
            "blocking": sample["blocking_cycles"],
            "queuing": sample["queuing_cycles"],
            "transfer": sample["transfer_cycles"],
            "total": sample["latency_cycles"],
        }
        breakdown = sample["power_breakdown"]
        power[layout] = {
            "links": breakdown["links"],
            "crossbar": breakdown["crossbar"],
            "arbiters_logic": breakdown["arbiters_logic"],
            "buffers": breakdown["buffers"],
            "total": breakdown["total"],
        }
    return {"rate": rate, "latency": latency, "power": power}


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    base_lat = data["latency"]["baseline"]["total"]
    print("Figure 8(a): latency breakdown, % of baseline total")
    rows = []
    for layout, parts in data["latency"].items():
        rows.append(
            [
                layout,
                f"{100 * parts['blocking'] / base_lat:.1f}",
                f"{100 * parts['queuing'] / base_lat:.1f}",
                f"{100 * parts['transfer'] / base_lat:.1f}",
                f"{100 * parts['total'] / base_lat:.1f}",
            ]
        )
    print(format_table(["layout", "blocking", "queuing", "transfer", "total"], rows))
    print()
    base_pow = data["power"]["baseline"]["total"]
    print("Figure 8(b): power breakdown, % of baseline total")
    rows = []
    for layout, parts in data["power"].items():
        rows.append(
            [
                layout,
                f"{100 * parts['links'] / base_pow:.1f}",
                f"{100 * parts['crossbar'] / base_pow:.1f}",
                f"{100 * parts['arbiters_logic'] / base_pow:.1f}",
                f"{100 * parts['buffers'] / base_pow:.1f}",
                f"{100 * parts['total'] / base_pow:.1f}",
            ]
        )
    print(
        format_table(
            ["layout", "links", "xbar", "arb+logic", "buffers", "total"], rows
        )
    )


if __name__ == "__main__":
    main(fast=False)
