"""Figure 11: network latency and power with application workloads.

Full-system (CMP + coherence + NoC) runs over the paper's ten workloads:

(a) percentage network-latency reduction of each HeteroNoC layout over the
    baseline (paper: 18.5 % average for Diagonal+BL);
(b) latency breakdown (blocking / queuing / transfer);
(c) network power reduction (paper: 18 % average, 22 % Diagonal+BL);
(d) power breakdown (links / crossbar / arbiters+logic / buffers).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cmp import CmpSystem
from repro.core.layouts import layout_by_name
from repro.core.power import network_power_breakdown
from repro.experiments.common import format_table, percent_reduction
from repro.traffic.workloads import WORKLOADS, generate_core_trace

DEFAULT_WORKLOADS = ("SAP", "SPECjbb", "frrt", "vips", "ddup", "sclst")
DEFAULT_LAYOUTS = ("baseline", "center+B", "diagonal+B", "center+BL", "diagonal+BL")


def run_one(
    layout_name: str,
    workload: str,
    records_per_core: int,
    seed: int = 7,
    max_cycles: int = 400_000,
) -> Dict[str, object]:
    """One full-system run; returns latency/power metrics."""
    layout = layout_by_name(layout_name)
    profile = WORKLOADS[workload]
    traces = {
        core: generate_core_trace(profile, core, records_per_core, seed=seed)
        for core in range(layout.mesh_size**2)
    }
    system = CmpSystem(layout, traces)
    system.warm_caches()
    system.network.begin_measurement()
    cycles = system.run(max_cycles=max_cycles)
    system.network.end_measurement()
    stats = system.network.stats
    power = network_power_breakdown(system.network, stats)
    return {
        "cycles": cycles,
        "ipc": system.mean_ipc(),
        "net_latency_cycles": stats.avg_latency_cycles,
        "queuing": stats.avg_queuing_cycles,
        "blocking": stats.avg_blocking_cycles,
        "transfer": stats.avg_transfer_cycles,
        "power_w": power["total"],
        "power_breakdown": power,
        "miss_latency": system.miss_latency_stats()["mean"],
    }


def run(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    layouts: Sequence[str] = DEFAULT_LAYOUTS,
    records_per_core: int = 400,
    fast: bool = True,
    seed: int = 7,
) -> Dict[str, object]:
    if fast:
        records_per_core = min(records_per_core, 400)
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for workload in workloads:
        results[workload] = {}
        for layout in layouts:
            results[workload][layout] = run_one(
                layout, workload, records_per_core, seed=seed
            )
    summary = {}
    for layout in layouts:
        if layout == "baseline":
            continue
        latency_reductions = [
            percent_reduction(
                results[w][layout]["net_latency_cycles"],
                results[w]["baseline"]["net_latency_cycles"],
            )
            for w in workloads
        ]
        power_reductions = [
            percent_reduction(
                results[w][layout]["power_w"],
                results[w]["baseline"]["power_w"],
            )
            for w in workloads
        ]
        summary[layout] = {
            "avg_latency_reduction_pct": sum(latency_reductions) / len(workloads),
            "avg_power_reduction_pct": sum(power_reductions) / len(workloads),
        }
    return {"workloads": list(workloads), "results": results, "summary": summary}


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    layouts = [l for l in DEFAULT_LAYOUTS if l != "baseline"]
    print("Figure 11(a): network latency reduction over baseline (%)")
    rows = []
    for w in data["workloads"]:
        row = [w]
        for layout in layouts:
            row.append(
                f"{percent_reduction(data['results'][w][layout]['net_latency_cycles'], data['results'][w]['baseline']['net_latency_cycles']):+.1f}"
            )
        rows.append(row)
    print(format_table(["workload"] + layouts, rows))
    print()
    print("Figure 11(b): latency breakdown (cycles)")
    rows = []
    for w in data["workloads"]:
        for layout in ("baseline", "diagonal+BL"):
            r = data["results"][w][layout]
            rows.append(
                [
                    w,
                    layout,
                    f"{r['blocking']:.1f}",
                    f"{r['queuing']:.1f}",
                    f"{r['transfer']:.1f}",
                ]
            )
    print(format_table(["workload", "layout", "blocking", "queuing", "transfer"], rows))
    print()
    print("Figure 11(c): network power reduction over baseline (%)")
    rows = []
    for w in data["workloads"]:
        row = [w]
        for layout in layouts:
            row.append(
                f"{percent_reduction(data['results'][w][layout]['power_w'], data['results'][w]['baseline']['power_w']):+.1f}"
            )
        rows.append(row)
    print(format_table(["workload"] + layouts, rows))
    print()
    for layout, s in data["summary"].items():
        print(
            f"{layout}: avg latency reduction {s['avg_latency_reduction_pct']:+.1f}% "
            f"(paper Diagonal+BL: +18.5%), avg power reduction "
            f"{s['avg_power_reduction_pct']:+.1f}% (paper: +18..22%)"
        )


if __name__ == "__main__":
    main(fast=False)
