"""Figure 12: IPC improvement of HeteroNoC layouts over the baseline.

Full-system runs; the paper reports Diagonal+BL improving IPC by ~12 % on
commercial workloads and ~10 % on PARSEC.  This harness reuses the
Figure 11 runner and reports the IPC view of the same experiments.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import format_table, percent_change
from repro.experiments.fig11_applications import run_one

COMMERCIAL = ("SAP", "SPECjbb", "TPC-C", "SJAS")
PARSEC = ("frrt", "fsim", "vips", "canl", "ddup", "sclst")
DEFAULT_LAYOUTS = ("baseline", "diagonal+B", "center+BL", "diagonal+BL")


def run(
    commercial: Sequence[str] = COMMERCIAL[:2],
    parsec: Sequence[str] = PARSEC[:3],
    layouts: Sequence[str] = DEFAULT_LAYOUTS,
    records_per_core: int = 600,
    fast: bool = True,
    seed: int = 7,
) -> Dict[str, object]:
    if fast:
        records_per_core = min(records_per_core, 400)
    workloads = list(commercial) + list(parsec)
    ipc: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        ipc[workload] = {}
        for layout in layouts:
            result = run_one(layout, workload, records_per_core, seed=seed)
            ipc[workload][layout] = result["ipc"]
    improvements: Dict[str, Dict[str, float]] = {}
    for layout in layouts:
        if layout == "baseline":
            continue
        improvements[layout] = {
            w: percent_change(ipc[w][layout], ipc[w]["baseline"])
            for w in workloads
        }
    def suite_avg(layout: str, suite: Sequence[str]) -> float:
        values = [improvements[layout][w] for w in suite if w in improvements[layout]]
        return sum(values) / len(values) if values else float("nan")

    summary = {
        layout: {
            "commercial_avg_pct": suite_avg(layout, commercial),
            "parsec_avg_pct": suite_avg(layout, parsec),
        }
        for layout in improvements
    }
    return {
        "ipc": ipc,
        "improvements": improvements,
        "summary": summary,
        "commercial": list(commercial),
        "parsec": list(parsec),
    }


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    layouts = list(data["improvements"].keys())
    rows = []
    for w in data["commercial"] + data["parsec"]:
        suite = "comm" if w in data["commercial"] else "parsec"
        row = [w, suite, f"{data['ipc'][w]['baseline']:.3f}"]
        for layout in layouts:
            row.append(f"{data['improvements'][layout][w]:+.1f}%")
        rows.append(row)
    print(
        format_table(
            ["workload", "suite", "base IPC"] + layouts,
            rows,
            "Figure 12: IPC improvement over baseline",
        )
    )
    print()
    for layout, s in data["summary"].items():
        print(
            f"{layout}: commercial avg {s['commercial_avg_pct']:+.1f}% "
            f"(paper Diagonal+BL: +12%), PARSEC avg {s['parsec_avg_pct']:+.1f}% "
            "(paper: +10%)"
        )


if __name__ == "__main__":
    main(fast=False)
