"""Figure 9: the nearest-neighbour anomaly.

With nearest-neighbour (NN) traffic every packet travels one hop, so the
many small routers -- with fewer VCs and narrower links -- are on *every*
path and the big routers' extra resources help few flows.  The paper
reports that HeteroNoC loses here: average latency +7 %, throughput
-9.5 %, and only ~7 % power savings; Center+BL beats Diagonal+BL because
central NN flows stay among big routers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import (
    format_table,
    percent_change,
    percent_reduction,
    sweep_layouts,
)

NN_LAYOUTS = ("baseline", "center+BL", "diagonal+BL", "row2_5+BL")
DEFAULT_RATES = (0.02, 0.05, 0.08, 0.11)


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    layouts: Sequence[str] = NN_LAYOUTS,
    fast: bool = True,
    seed: int = 11,
    flit_mode: str = "strict",
) -> Dict[str, object]:
    """NN sweep.

    Defaults to the *strict* flit mode: the anomaly the paper reports is
    precisely the physical bandwidth loss of the narrow edge links for
    one-hop traffic, which the paper-accounting mode hides (see
    EXPERIMENTS.md).
    """
    samples = sweep_layouts(
        layouts, "nearest_neighbor", rates, fast=fast, seed=seed,
        flit_mode=flit_mode,
    )
    curves: Dict[str, List[Dict[str, float]]] = {}
    for layout in layouts:
        curves[layout] = [
            {
                "rate": sample["rate"],
                "latency_ns": sample["latency_ns"],
                "throughput": sample["throughput"],
                "power_w": sample["power_w"],
                "saturated": sample["saturated"],
            }
            for sample in samples[layout]
        ]
    base = curves["baseline"]
    summary = {}
    for layout in layouts:
        if layout == "baseline":
            continue
        points = curves[layout]
        valid = [
            (p, b)
            for p, b in zip(points, base)
            if not (p["saturated"] or b["saturated"])
        ]
        summary[layout] = {
            "avg_latency_change_pct": (
                sum(percent_change(p["latency_ns"], b["latency_ns"]) for p, b in valid)
                / len(valid)
                if valid
                else float("nan")
            ),
            "throughput_change_pct": percent_change(
                points[-1]["throughput"], base[-1]["throughput"]
            ),
            "power_reduction_pct": percent_reduction(
                points[-1]["power_w"], base[-1]["power_w"]
            ),
        }
    return {"rates": list(rates), "curves": curves, "summary": summary}


def main(fast: bool = True) -> None:
    data = run(fast=fast)
    print("Figure 9: nearest-neighbour traffic")
    headers = ["rate"] + [f"{l} lat_ns" for l in data["curves"]]
    rows = []
    for i, rate in enumerate(data["rates"]):
        row = [f"{rate:.3f}"]
        for layout in data["curves"]:
            p = data["curves"][layout][i]
            row.append(f"{p['latency_ns']:.1f}{'*' if p['saturated'] else ''}")
        rows.append(row)
    print(format_table(headers, rows))
    print()
    rows = [
        [
            layout,
            f"{s['avg_latency_change_pct']:+.1f}%",
            f"{s['throughput_change_pct']:+.1f}%",
            f"{s['power_reduction_pct']:+.1f}%",
        ]
        for layout, s in data["summary"].items()
    ]
    print(
        format_table(
            ["layout", "avg latency change", "thpt change", "power red."],
            rows,
            "vs baseline (paper: +7% latency, -9.5% thpt, ~7% power for hetero)",
        )
    )


if __name__ == "__main__":
    main(fast=False)
