"""Regenerate every table and figure in one command.

Usage::

    python -m repro.experiments.run_all          # fast (reduced scale)
    python -m repro.experiments.run_all --full   # paper-scale (slow)
    python -m repro.experiments.run_all fig07 fig09   # a subset
    python -m repro.experiments.run_all --jobs 4      # parallel sweep points
    python -m repro.experiments.run_all --no-cache    # always resimulate
    python -m repro.experiments.run_all --csv out/    # also export CSVs
    python -m repro.experiments.run_all --resume      # durable store:
                                                      #   report journal
                                                      #   progress, then
                                                      #   continue
    python -m repro.experiments.run_all --obs out/    # observability demo:
                                                      #   instrumented fig01
                                                      #   run -> time series,
                                                      #   trace, profile
    python -m repro.experiments.run_all --list        # enumerate harnesses
                                                      #   and their sweep tags
    python -m repro.experiments.run_all --kernel c    # force a cycle kernel
                                        # (event, soa, naive or c) for every
                                        # harness via REPRO_KERNEL; all
                                        # kernels are bit-identical, so this
                                        # changes wall-clock only
    python -m repro.experiments.run_all --submit http://host:8923 fig07
                                        # ship sweeps to a repro.serve
                                        # job server instead of running
                                        # them locally

Sweep-style harnesses submit their points through :mod:`repro.exec`:
``--jobs N`` fans independent points out over N worker processes
(bit-identical output to serial execution) and completed points land in
a disk cache (see ``repro.exec.default_cache_dir``), so a re-run -- or a
crashed ``--full`` sweep restarted -- skips simulation for every point
it already has.  ``--no-cache`` opts out.  Progress heartbeats and cache
configuration go to stderr so stdout stays byte-comparable across
``--jobs`` settings.

Each harness prints the paper-shaped rows/series; EXPERIMENTS.md holds
the recorded measured-vs-paper comparison.  After each harness a progress
line reports elapsed wall-clock and the ETA for the remaining harnesses
(estimated from the mean harness duration so far).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablation_mechanisms,
    fig01_utilization,
    fig02_other_topologies,
    fig07_ur_traffic,
    fig08_breakdown,
    fig09_nn_traffic,
    fig10_torus,
    fig11_applications,
    fig12_ipc,
    fig13_memctrl,
    fig14_asymmetric,
    placement_search,
    resilience,
    sensitivity_big_routers,
    table1_router_model,
)

HARNESSES = {
    "table1": lambda fast: table1_router_model.main(),
    "fig01": fig01_utilization.main,
    "fig02": fig02_other_topologies.main,
    "fig07": fig07_ur_traffic.main,
    "fig08": fig08_breakdown.main,
    "fig09": fig09_nn_traffic.main,
    "fig10": fig10_torus.main,
    "fig11": fig11_applications.main,
    "fig12": fig12_ipc.main,
    "fig13": fig13_memctrl.main,
    "fig14": fig14_asymmetric.main,
    "ablations": ablation_mechanisms.main,
    "sensitivity": sensitivity_big_routers.main,
    "resilience": resilience.main,
    "search": placement_search.main,
}


# Harnesses whose run() output export_experiment understands.
_EXPORTABLE = {
    "fig01": lambda fast: __import__(
        "repro.experiments.fig01_utilization", fromlist=["run"]
    ).run(fast=fast),
    "fig07": lambda fast: __import__(
        "repro.experiments.fig07_ur_traffic", fromlist=["run"]
    ).run(fast=fast),
    "fig09": lambda fast: __import__(
        "repro.experiments.fig09_nn_traffic", fromlist=["run"]
    ).run(fast=fast),
    "sensitivity": lambda fast: __import__(
        "repro.experiments.sensitivity_big_routers", fromlist=["run"]
    ).run(fast=fast),
}


def _export_observability(directory: str, fast: bool) -> None:
    """Run one instrumented Figure-1-style run and export its artifacts.

    Demonstrates the full observability stack end to end: time-series
    sampling, packet tracing, step-phase profiling, kernel metrics with
    bottleneck attribution (ASCII heatmap printed below), engine span
    telemetry for a tiny sweep, a search-trace sample and a run manifest
    -- the quickest way to get trace/span files for
    ``python -m repro.obs.replay``.
    """
    import json
    import pathlib

    from repro.exec import run_sweep, sweep_points
    from repro.experiments.common import measurement_scale, run_layout_synthetic
    from repro.experiments.export import export_observation
    from repro.obs.attribution import attribute_metrics
    from repro.obs.heatmap import render_report
    from repro.obs.manifest import (
        RunManifest,
        SearchTrace,
        SweepTelemetry,
        merge_chrome_events,
        write_spans_jsonl,
    )
    from repro.search.objectives import PlacementEvaluator
    from repro.search.optimize import simulated_annealing

    directory = pathlib.Path(directory)
    data = run_layout_synthetic(
        "baseline",
        "uniform_random",
        rate=0.05,
        fast=fast,
        observe_window=100,
        trace=True,
        profile=True,
        metrics=True,
    )
    observation = data["observation"]
    # Drain in-flight background packets so the link-flit conservation
    # check (injected == delivered x hops) in the attribution holds.
    data["network"].drain(max_cycles=400_000)
    for path in export_observation("obs_demo", observation, directory):
        print(f"  wrote {path}")
    print(render_report(attribute_metrics(observation.metrics), top_k=5))
    if observation.profiler is not None:
        print(observation.profiler.format_report())

    # Tiny instrumented sweep: engine spans + a merged Chrome trace.
    scale = measurement_scale(fast=True)
    points = sweep_points(
        ["baseline", "center+BL"], "uniform_random", [0.02, 0.05], **scale
    )
    telemetry = SweepTelemetry()
    run_sweep(points, telemetry=telemetry)

    # Search telemetry sample (trace hooks never touch the RNG, so the
    # traced trajectory matches an untraced run exactly).
    trace = SearchTrace(every=50)
    simulated_annealing(
        PlacementEvaluator(4), num_big=4, steps=200, restarts=1,
        polish_top=1, telemetry=trace,
    )
    spans_path = directory / "obs_demo_spans.jsonl"
    write_spans_jsonl(spans_path, telemetry.spans + trace.records)
    print(f"  wrote {spans_path}")

    merged = merge_chrome_events(
        observation.tracer.chrome_trace_events() if observation.tracer else [],
        telemetry.chrome_trace_events(),
    )
    chrome_path = directory / "obs_demo_chrome_merged.json"
    with chrome_path.open("w") as handle:
        json.dump(
            {"traceEvents": merged, "otherData": {"time_unit": "mixed"}},
            handle,
        )
    print(f"  wrote {chrome_path}")

    manifest = RunManifest.collect(
        "obs_demo",
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        config={"layout": "baseline", "pattern": "uniform_random",
                "rate": 0.05, "fast": fast},
        points=points,
        telemetry=telemetry,
        argv=sys.argv,
    )
    manifest_path = directory / "obs_demo_manifest.json"
    manifest.write_json(manifest_path)
    print(f"  wrote {manifest_path}")


def _pop_flag_with_value(argv: list, flag: str):
    """Remove ``flag VALUE`` from argv; returns (value, argv) or raises."""
    index = argv.index(flag)
    if index + 1 >= len(argv):
        raise ValueError(f"{flag} needs a value argument")
    return argv[index + 1], argv[:index] + argv[index + 2:]


def _configure_exec(argv: list):
    """Apply ``--jobs N`` / ``--no-cache`` / ``--resume`` to the engine.

    Returns ``(argv, resume_store)`` where ``resume_store`` is the
    durable store path when ``--resume`` was given (else ``None``).
    Everything this prints goes to stderr: the harness tables on stdout
    must stay byte-identical whatever the execution backend.

    ``--resume`` switches the cache to the crash-safe SQLite store
    (``sweeps.sqlite`` in the cache directory, unless the configured
    cache path already *is* a store), so the sweep journal from an
    interrupted run is available to report and extend.
    """
    from repro.exec import configure, default_cache_dir
    from repro.exec.store import is_store_path
    from repro.obs.profiler import make_progress_printer

    jobs = None
    if "--jobs" in argv:
        value, argv = _pop_flag_with_value(argv, "--jobs")
        jobs = int(value)
        if jobs < 1:
            raise ValueError(f"--jobs needs a positive integer, got {value}")
    cache_dir = default_cache_dir()
    if "--no-cache" in argv:
        argv = [a for a in argv if a != "--no-cache"]
        cache_dir = None
    resume_store = None
    if "--resume" in argv:
        argv = [a for a in argv if a != "--resume"]
        if cache_dir is None:
            raise ValueError("--resume needs the cache; drop --no-cache")
        if is_store_path(cache_dir):
            resume_store = cache_dir
        else:
            import os

            resume_store = os.path.join(cache_dir, "sweeps.sqlite")
        cache_dir = resume_store
    configure(
        jobs=jobs,
        cache_dir=cache_dir,
        # No captured stream: the printer resolves sys.stderr per print,
        # so the installed default keeps working after redirection.
        progress=make_progress_printer(),
    )
    print(
        f"[exec] jobs={jobs or 'default'} "
        f"cache={cache_dir if cache_dir is not None else 'off'}",
        file=sys.stderr,
    )
    return argv, resume_store


def _report_resume(store_path, names: list) -> dict:
    """Print per-figure journal progress; returns the report dict.

    Reads the sweep journal an interrupted run left in the store:
    one line per (tag, sweep) with committed/pending point counts, so
    the operator sees exactly how much of ``--full`` survives before
    the suite continues (committed points replay from the store at
    zero simulation cost).
    """
    from repro.exec.store import ResultStore

    summary = ResultStore(store_path).journal_summary()
    print(f"[resume] store {store_path}", file=sys.stderr)
    if not summary:
        print("[resume] no journalled sweeps yet", file=sys.stderr)
    relevant = []
    for row in summary:
        tag = row["tag"] or "(untagged)"
        print(
            f"[resume] {tag}: {row['committed']}/{row['total']} points "
            f"committed, {row['pending']} pending",
            file=sys.stderr,
        )
        relevant.append(row)
    return {
        "store": str(store_path),
        "sweeps": relevant,
        "harnesses": list(names),
    }


def _write_resume_manifest(store_path, resume_report: dict) -> None:
    """Record the resume event next to the store (RunManifest JSON)."""
    from repro.obs.manifest import RunManifest

    manifest = RunManifest.collect(
        "run_all_resume",
        created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        config={"store": str(store_path)},
        argv=sys.argv,
        extra={"resume": resume_report},
    )
    import pathlib

    path = pathlib.Path(store_path).with_suffix(".resume.json")
    manifest.write_json(path)
    print(f"[resume] manifest {path}", file=sys.stderr)


def _list_harnesses() -> int:
    """Print the harness table: name, sweep tag, CSV export support.

    Every harness journals its sweeps under a tag equal to its own name
    (that is what ``--resume`` reports against and what shows up in
    ``python -m repro.exec <store> info`` and in job-server tags).
    """
    import os

    width = max(len(name) for name in HARNESSES)
    print(f"{'harness':<{width}}  {'sweep tag':<{width}}  csv")
    for name in HARNESSES:
        csv = "yes" if name in _EXPORTABLE else "-"
        print(f"{name:<{width}}  {name:<{width}}  {csv}")
    print(f"cycle kernel: {os.environ.get('REPRO_KERNEL', 'event')}")
    return 0


def main(argv: list) -> int:
    fast = "--full" not in argv
    if "--kernel" in argv:
        import os

        from repro.noc.config import NetworkConfig

        try:
            value, argv = _pop_flag_with_value(argv, "--kernel")
        except ValueError as exc:
            print(exc)
            return 2
        if value not in NetworkConfig.KERNELS:
            print(
                f"--kernel must be one of {list(NetworkConfig.KERNELS)}, "
                f"got {value!r}"
            )
            return 2
        # REPRO_KERNEL reaches every network the harnesses (and any
        # --jobs worker processes) construct; the harness tables stay
        # byte-identical because all kernels are bit-identical.
        os.environ["REPRO_KERNEL"] = value
    if "--list" in argv:
        return _list_harnesses()
    csv_dir = None
    obs_dir = None
    submit_url = None
    try:
        if "--csv" in argv:
            csv_dir, argv = _pop_flag_with_value(argv, "--csv")
        if "--obs" in argv:
            obs_dir, argv = _pop_flag_with_value(argv, "--obs")
        if "--submit" in argv:
            submit_url, argv = _pop_flag_with_value(argv, "--submit")
        argv, resume_store = _configure_exec(argv)
    except ValueError as exc:
        print(exc)
        return 2
    if submit_url is not None:
        from repro.serve.client import ServeClient, ServeError, install_submit

        try:
            ServeClient(submit_url).health()
        except (ServeError, ValueError) as exc:
            print(f"--submit {submit_url}: {exc}")
            return 2
        install_submit(submit_url, client="run_all")
        print(f"[exec] submitting sweeps to {submit_url}", file=sys.stderr)
    selected = [a for a in argv if not a.startswith("-")]
    names = selected or list(HARNESSES)
    unknown = [n for n in names if n not in HARNESSES]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(HARNESSES)}")
        return 2
    if resume_store is not None:
        resume_report = _report_resume(resume_store, names)
        _write_resume_manifest(resume_store, resume_report)
    suite_start = time.time()
    for done, name in enumerate(names):
        print("=" * 72)
        print(f"{name}  ({'fast' if fast else 'full'} scale)")
        print("=" * 72)
        start = time.time()
        from repro.exec import configure

        # Tag this harness's sweeps in the store journal, so a later
        # --resume reports progress per figure.
        configure(sweep_tag=name)
        try:
            HARNESSES[name](fast)
        finally:
            configure(sweep_tag=None)
        if csv_dir and name in _EXPORTABLE:
            from repro.experiments.export import export_experiment

            written = export_experiment(name, _EXPORTABLE[name](fast), csv_dir)
            for path in written:
                print(f"  wrote {path}")
        elapsed = time.time() - suite_start
        remaining = len(names) - (done + 1)
        eta = elapsed / (done + 1) * remaining
        print(
            f"[{name} done in {time.time() - start:.1f} s; "
            f"{done + 1}/{len(names)} harnesses, {elapsed:.1f} s elapsed, "
            f"ETA {eta:.0f} s]\n"
        )
    if obs_dir:
        print("=" * 72)
        print("observability export")
        print("=" * 72)
        _export_observability(obs_dir, fast)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
