"""Regenerate every table and figure in one command.

Usage::

    python -m repro.experiments.run_all          # fast (reduced scale)
    python -m repro.experiments.run_all --full   # paper-scale (slow)
    python -m repro.experiments.run_all fig07 fig09   # a subset
    python -m repro.experiments.run_all --csv out/    # also export CSVs

Each harness prints the paper-shaped rows/series; EXPERIMENTS.md holds
the recorded measured-vs-paper comparison.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablation_mechanisms,
    fig01_utilization,
    fig02_other_topologies,
    fig07_ur_traffic,
    fig08_breakdown,
    fig09_nn_traffic,
    fig10_torus,
    fig11_applications,
    fig12_ipc,
    fig13_memctrl,
    fig14_asymmetric,
    sensitivity_big_routers,
    table1_router_model,
)

HARNESSES = {
    "table1": lambda fast: table1_router_model.main(),
    "fig01": fig01_utilization.main,
    "fig02": fig02_other_topologies.main,
    "fig07": fig07_ur_traffic.main,
    "fig08": fig08_breakdown.main,
    "fig09": fig09_nn_traffic.main,
    "fig10": fig10_torus.main,
    "fig11": fig11_applications.main,
    "fig12": fig12_ipc.main,
    "fig13": fig13_memctrl.main,
    "fig14": fig14_asymmetric.main,
    "ablations": ablation_mechanisms.main,
    "sensitivity": sensitivity_big_routers.main,
}


# Harnesses whose run() output export_experiment understands.
_EXPORTABLE = {
    "fig01": lambda fast: __import__(
        "repro.experiments.fig01_utilization", fromlist=["run"]
    ).run(fast=fast),
    "fig07": lambda fast: __import__(
        "repro.experiments.fig07_ur_traffic", fromlist=["run"]
    ).run(fast=fast),
    "fig09": lambda fast: __import__(
        "repro.experiments.fig09_nn_traffic", fromlist=["run"]
    ).run(fast=fast),
    "sensitivity": lambda fast: __import__(
        "repro.experiments.sensitivity_big_routers", fromlist=["run"]
    ).run(fast=fast),
}


def main(argv: list) -> int:
    fast = "--full" not in argv
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        if index + 1 >= len(argv):
            print("--csv needs a directory argument")
            return 2
        csv_dir = argv[index + 1]
        argv = argv[:index] + argv[index + 2:]
    selected = [a for a in argv if not a.startswith("-")]
    names = selected or list(HARNESSES)
    unknown = [n for n in names if n not in HARNESSES]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(HARNESSES)}")
        return 2
    for name in names:
        print("=" * 72)
        print(f"{name}  ({'fast' if fast else 'full'} scale)")
        print("=" * 72)
        start = time.time()
        HARNESSES[name](fast)
        if csv_dir and name in _EXPORTABLE:
            from repro.experiments.export import export_experiment

            written = export_experiment(name, _EXPORTABLE[name](fast), csv_dir)
            for path in written:
                print(f"  wrote {path}")
        print(f"[{name} done in {time.time() - start:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
