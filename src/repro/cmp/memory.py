"""Memory controllers and the DRAM model (Table 2 / Section 6).

Each controller owns a slice of physical memory (low-order block
interleave across controllers, the paper's Section 6 mapping) and serves
reads with a fixed DRAM access latency plus queuing: one request may
begin service every ``service_interval`` cycles, modelling limited DRAM
bandwidth per channel.  Writes (dirty L2 evictions) are posted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List

from collections import deque

from repro.cmp.coherence import Message, SendFn


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM timing (Table 2: 400-cycle access)."""

    access_latency: int = 400
    service_interval: int = 4

    def __post_init__(self) -> None:
        if self.access_latency < 1:
            raise ValueError("access_latency must be >= 1")
        if self.service_interval < 1:
            raise ValueError("service_interval must be >= 1")


class MemoryController:
    """One memory controller attached at a network node."""

    def __init__(
        self, node: int, config: MemoryConfig, send: SendFn
    ) -> None:
        self.node = node
        self.config = config
        self.send = send
        self._queue: Deque[Message] = deque()
        self._next_service_at = 0
        # (completion_cycle, message) pairs in flight inside DRAM.
        self._in_flight: List = []
        self.reads_served = 0
        self.writes_served = 0

    def handle(self, msg: Message, cycle: int) -> None:
        if msg.mtype == "MEM_READ":
            self._queue.append(msg)
        elif msg.mtype == "MEM_WRITE":
            # Posted write: consumes a service slot but needs no reply.
            self._queue.append(msg)
        else:
            raise ValueError(f"memory controller got unexpected {msg.mtype}")

    def tick(self, cycle: int) -> None:
        """Advance one cycle: start and complete DRAM accesses."""
        if self._queue and cycle >= self._next_service_at:
            msg = self._queue.popleft()
            self._next_service_at = cycle + self.config.service_interval
            if msg.mtype == "MEM_WRITE":
                self.writes_served += 1
            else:
                self._in_flight.append(
                    (cycle + self.config.access_latency, msg)
                )
        if not self._in_flight:
            return
        still_waiting = []
        for done_at, msg in self._in_flight:
            if done_at <= cycle:
                self.reads_served += 1
                self.send(
                    Message(
                        mtype="MEM_DATA",
                        block=msg.block,
                        src=self.node,
                        dst=msg.src,
                    )
                )
            else:
                still_waiting.append((done_at, msg))
        self._in_flight = still_waiting

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + len(self._in_flight)
