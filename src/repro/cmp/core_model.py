"""Trace-driven core timing models.

Two flavours, matching the paper's asymmetric-CMP study (Section 7):

* the **large** core: multiple-issue out-of-order (Table 2: 3-wide,
  64-entry window) -- modelled as a core that retires up to
  ``issue_width`` non-memory instructions per cycle and tolerates up to
  ``max_outstanding`` concurrent cache misses before stalling;
* the **small** core: single-issue in-order -- one instruction per cycle
  and *blocking* memory operations (one outstanding miss, loads stall the
  pipeline until data returns).

The instruction stream is the paper's trace format: memory operations
separated by counted non-memory instruction gaps
(:class:`repro.traffic.trace.TraceRecord`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from repro.cmp.coherence import L1Controller
from repro.traffic.trace import TraceRecord


@dataclass(frozen=True)
class CoreConfig:
    """Core timing parameters."""

    issue_width: int = 3
    max_outstanding: int = 16
    blocking_loads: bool = False
    # Reorder-buffer size: the core may run at most this many instructions
    # ahead of its oldest incomplete memory operation (Table 2: 64-entry
    # instruction window).
    window: int = 64

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")


def large_core_config() -> CoreConfig:
    """Table 2's out-of-order core (3-wide, 64-entry window)."""
    return CoreConfig(
        issue_width=3, max_outstanding=16, blocking_loads=False, window=64
    )


def small_core_config() -> CoreConfig:
    """The asymmetric CMP's single-issue in-order core."""
    return CoreConfig(
        issue_width=1, max_outstanding=1, blocking_loads=True, window=16
    )


class TraceCore:
    """One core replaying a memory trace through its L1 controller."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Sequence[TraceRecord],
        l1: L1Controller,
        start_cycle: int = 0,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.trace: List[TraceRecord] = list(trace)
        self.l1 = l1
        self.start_cycle = start_cycle
        self._index = 0
        self._gap_remaining = self.trace[0].gap if self.trace else 0
        self.instructions_retired = 0
        self.outstanding = 0
        # Retired-instruction marks at issue time of each outstanding miss
        # (FIFO approximation of the ROB: the core may run at most
        # ``window`` instructions past its oldest incomplete access).
        self._issue_marks: Deque[int] = deque()
        self._blocked_until_response = False
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.stall_cycles = 0

    @property
    def trace_exhausted(self) -> bool:
        return self._index >= len(self.trace)

    @property
    def done(self) -> bool:
        return self.trace_exhausted and self.outstanding == 0

    def step(self, cycle: int) -> None:
        """Advance one cycle of execution."""
        if self.done or cycle < self.start_cycle:
            return
        if self.started_at is None:
            self.started_at = cycle
        if self._blocked_until_response:
            self.stall_cycles += 1
            return
        budget = self.config.issue_width
        while budget > 0 and not self.trace_exhausted:
            headroom = self._window_headroom()
            if headroom == 0:
                self.stall_cycles += 1
                return
            if self._gap_remaining > 0:
                consumed = min(budget, self._gap_remaining, headroom)
                self._gap_remaining -= consumed
                self.instructions_retired += consumed
                budget -= consumed
                continue
            record = self.trace[self._index]
            if self.outstanding >= self.config.max_outstanding:
                self.stall_cycles += 1
                return
            status = self.l1.request(
                record.address,
                record.is_write,
                cycle,
                self._make_completion(record, cycle),
            )
            if status == "blocked":
                self.stall_cycles += 1
                return
            self.outstanding += 1
            self._issue_marks.append(self.instructions_retired)
            self.instructions_retired += 1
            budget -= 1
            self._advance_trace()
            blocking = self.config.blocking_loads and not record.is_write
            if blocking:
                # In-order core: the load stalls the pipeline until the
                # data (or the L1 hit) completes.
                self._blocked_until_response = True
                return
        if self.trace_exhausted and self.outstanding == 0:
            self.finished_at = cycle

    def _advance_trace(self) -> None:
        self._index += 1
        if not self.trace_exhausted:
            self._gap_remaining = self.trace[self._index].gap

    def _window_headroom(self) -> int:
        """Instructions the core may still run past its oldest miss."""
        if not self._issue_marks:
            return self.config.window
        return max(
            0,
            self._issue_marks[0] + self.config.window - self.instructions_retired,
        )

    def _make_completion(self, record: TraceRecord, cycle: int) -> Callable[[], None]:
        def on_complete() -> None:
            self.outstanding -= 1
            if self._issue_marks:
                self._issue_marks.popleft()
            self._blocked_until_response = False
            if self.outstanding < 0:
                raise RuntimeError(
                    f"core {self.core_id} completed more memory ops than issued"
                )

        return on_complete

    def ipc(self, current_cycle: int) -> float:
        """Instructions per cycle since this core started."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else current_cycle
        elapsed = max(1, end - self.started_at)
        return self.instructions_retired / elapsed
