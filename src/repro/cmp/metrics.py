"""Multi-program performance metrics (Eyerman & Eeckhout, ref [8]).

Both metrics compare each application's IPC when sharing the CMP against
its IPC running alone on the same platform:

* weighted speedup ``= sum_i IPC_shared_i / IPC_alone_i`` -- system
  throughput;
* harmonic speedup ``= N / sum_i (IPC_alone_i / IPC_shared_i)`` -- a
  combined performance *and* fairness measure.
"""

from __future__ import annotations

from typing import Dict, Sequence


def weighted_speedup(
    shared_ipc: Sequence[float], alone_ipc: Sequence[float]
) -> float:
    _check(shared_ipc, alone_ipc)
    return sum(s / a for s, a in zip(shared_ipc, alone_ipc))


def harmonic_speedup(
    shared_ipc: Sequence[float], alone_ipc: Sequence[float]
) -> float:
    _check(shared_ipc, alone_ipc)
    denominator = sum(a / s for s, a in zip(shared_ipc, alone_ipc))
    return len(shared_ipc) / denominator


def _check(shared: Sequence[float], alone: Sequence[float]) -> None:
    if len(shared) != len(alone):
        raise ValueError("shared and alone IPC lists must align")
    if not shared:
        raise ValueError("need at least one application")
    if any(v <= 0 for v in shared) or any(v <= 0 for v in alone):
        raise ValueError("IPC values must be positive")


def ipc_improvement_pct(new_ipc: float, base_ipc: float) -> float:
    """Percent IPC improvement of ``new`` over ``base``."""
    if base_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return 100.0 * (new_ipc - base_ipc) / base_ipc


def summarize_ipc(per_core_ipc: Dict[int, float]) -> Dict[str, float]:
    values = list(per_core_ipc.values())
    if not values:
        raise ValueError("no cores to summarize")
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "total": sum(values),
    }
