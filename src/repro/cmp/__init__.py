"""64-tile CMP model (Table 2) co-simulated with the NoC.

Each tile hosts a core with a private write-back L1, one bank of the
shared, address-interleaved L2, and a router.  A two-level directory-based
MESI protocol keeps the L1s coherent; every request, response, forward,
invalidation and acknowledgement travels through the cycle-accurate
network model as a 1-flit address packet or a multi-flit data packet.
Memory controllers sit at configurable nodes (corners / diamond /
diagonal, Section 6) in front of a fixed-latency DRAM model.
"""

from repro.cmp.cache import CacheConfig, MSHRFile, SetAssociativeCache
from repro.cmp.core_model import CoreConfig, TraceCore
from repro.cmp.memory import MemoryConfig
from repro.cmp.metrics import harmonic_speedup, weighted_speedup
from repro.cmp.system import CmpConfig, CmpSystem

__all__ = [
    "CacheConfig",
    "CmpConfig",
    "CmpSystem",
    "CoreConfig",
    "harmonic_speedup",
    "MemoryConfig",
    "MSHRFile",
    "SetAssociativeCache",
    "TraceCore",
    "weighted_speedup",
]
