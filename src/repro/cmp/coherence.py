"""Two-level directory-based MESI coherence protocol (Table 2).

Private L1s are kept coherent by directories co-located with the shared
L2's home banks.  Every protocol action is a message that travels through
the cycle-accurate network:

===========  ======  ====================================================
message      size    meaning
===========  ======  ====================================================
GETS         1 flit  L1 read miss -> home
GETX         1 flit  L1 write miss / upgrade -> home
PUTX         data    dirty L1 eviction (writeback) -> home
WB_ACK       1 flit  home acknowledges a PUTX
DATA         data    home grants Shared
DATA_E       data    home grants Exclusive (no other sharers)
DATA_X       data    home grants Modified (write permission)
INV          1 flit  home invalidates a sharer
INV_ACK      1 flit  sharer acknowledges an INV -> home
FWD_GETS     1 flit  home forwards a read to the Modified owner
FWD_GETX     1 flit  home forwards a write to the Modified owner
OWNER_DATA   data    owner returns the block to the home
MEM_READ     1 flit  L2 miss -> memory controller
MEM_DATA     data    memory controller -> home fill
MEM_WRITE    data    dirty L2 eviction -> memory controller
===========  ======  ====================================================

The home bank serializes transactions per block (a busy block queues later
requests), which keeps the protocol free of most races; the remaining
PUTX-vs-forward race is handled with a writeback buffer at the L1.

Known approximation (timing model): when the (inclusive) L2 evicts a line
with L1 copies, the home sends fire-and-forget INVs and drops the late
acknowledgements instead of blocking the fill on a full recall; DESIGN.md
records this.  L2 banks are large enough (1 MB, 16-way) that such recalls
are rare in the evaluated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Set

from collections import deque

from repro.cmp.cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    CacheConfig,
    MSHRFile,
    SetAssociativeCache,
)

ADDRESS_MESSAGE_BITS = 64
DATA_MESSAGE_BITS = 1024

DATA_MESSAGES = frozenset(
    {"PUTX", "DATA", "DATA_E", "DATA_X", "OWNER_DATA", "MEM_DATA", "MEM_WRITE"}
)


@dataclass
class Message:
    """One coherence protocol message (carried as a network packet)."""

    mtype: str
    block: int
    src: int
    dst: int
    requester: Optional[int] = None
    # Set on grants whose transaction went to DRAM; lets the system
    # separate memory round-trips (Figure 13's metric) from cache-to-cache
    # transfers.
    via_memory: bool = False

    @property
    def payload_bits(self) -> int:
        return DATA_MESSAGE_BITS if self.mtype in DATA_MESSAGES else ADDRESS_MESSAGE_BITS


SendFn = Callable[[Message], None]
ScheduleFn = Callable[[int, Callable[[], None]], None]


class L1Controller:
    """Private L1 cache controller for one core."""

    def __init__(
        self,
        node: int,
        cache_config: CacheConfig,
        mshr_capacity: int,
        home_of: Callable[[int], int],
        send: SendFn,
        schedule: ScheduleFn,
    ) -> None:
        self.node = node
        self.cache = SetAssociativeCache(cache_config)
        self.mshrs = MSHRFile(mshr_capacity)
        self.home_of = home_of
        self.send = send
        self.schedule = schedule
        # blocks with a PUTX in flight; value False once superseded by a
        # forward that already handed the block onward.
        self.writeback_buffer: Dict[int, bool] = {}
        self.loads = 0
        self.stores = 0
        #: optional hook fired when a miss completes:
        #: (block, issue_cycle, via_memory, is_write) -> None
        self.on_miss_complete: Optional[Callable[[int, int, bool, bool], None]] = None

    # -- core-facing interface ------------------------------------------------
    def request(
        self,
        address: int,
        is_write: bool,
        cycle: int,
        on_complete: Callable[[], None],
    ) -> str:
        """Core demand access.  Returns ``"hit"``, ``"miss"`` or ``"blocked"``.

        On a hit the completion callback fires after the L1 latency; on a
        miss it fires when the fill arrives.  ``"blocked"`` means the MSHR
        file is full (or the block already has a conflicting outstanding
        miss that cannot be merged) and the core must retry.
        """
        if is_write:
            self.stores += 1
        else:
            self.loads += 1
        block = self.cache.config.block_address(address)
        if block in self.writeback_buffer:
            # Our own PUTX for this block is still in flight; requesting
            # it again now could reach the home before the PUTX and leave
            # a stale writeback to clobber the new directory entry.
            # Stall until the WB_ACK clears the buffer.
            return "blocked"
        hit, line = self.cache.access(address)
        if hit:
            if not is_write or line.state in (MODIFIED, EXCLUSIVE):
                if is_write:
                    line.state = MODIFIED
                    line.dirty = True
                self.schedule(self.cache.config.latency, on_complete)
                return "hit"
            # Write to a Shared line: upgrade via GETX.
            hit = False
        entry = self.mshrs.lookup(block)
        if entry is not None:
            if is_write and not entry.is_write:
                # A read miss is outstanding and a write wants the block:
                # simplest correct handling is to retry once it returns.
                return "blocked"
            entry.waiters.append(on_complete)
            return "miss"
        if self.mshrs.full:
            return "blocked"
        entry = self.mshrs.allocate(block, is_write, cycle)
        entry.waiters.append(on_complete)
        self.send(
            Message(
                mtype="GETX" if is_write else "GETS",
                block=block,
                src=self.node,
                dst=self.home_of(block),
            )
        )
        return "miss"

    # -- network-facing interface ----------------------------------------------
    def handle(self, msg: Message) -> None:
        handler = {
            "DATA": self._on_data,
            "DATA_E": self._on_data,
            "DATA_X": self._on_data,
            "INV": self._on_inv,
            "FWD_GETS": self._on_fwd_gets,
            "FWD_GETX": self._on_fwd_getx,
            "WB_ACK": self._on_wb_ack,
        }.get(msg.mtype)
        if handler is None:
            raise ValueError(f"L1 at node {self.node} got unexpected {msg.mtype}")
        handler(msg)

    def _fill_state(self, mtype: str) -> str:
        return {"DATA": SHARED, "DATA_E": EXCLUSIVE, "DATA_X": MODIFIED}[mtype]

    def _on_data(self, msg: Message) -> None:
        state = self._fill_state(msg.mtype)
        victim = self.cache.insert(msg.block, state)
        line = self.cache.lookup(msg.block)
        if state == MODIFIED:
            line.dirty = True
        if victim is not None and victim.state == MODIFIED:
            self._write_back(victim.block)
        entry = self.mshrs.release(msg.block)
        if self.on_miss_complete is not None:
            self.on_miss_complete(
                msg.block, entry.issued_at, msg.via_memory, entry.is_write
            )
        for waiter in entry.waiters:
            waiter()
        if entry.pending_forward is not None:
            # Service the forward that overtook this fill: the line is
            # resident now, so the normal handler applies.
            self.handle(entry.pending_forward)
        elif entry.invalidate_on_fill and msg.mtype != "DATA_X":
            # A crossed invalidation: the waiters consumed the fill, but
            # the copy must not linger (the directory no longer lists us).
            self.cache.invalidate(msg.block)

    def _write_back(self, block: int) -> None:
        self.writeback_buffer[block] = True
        self.send(
            Message(
                mtype="PUTX", block=block, src=self.node, dst=self.home_of(block)
            )
        )

    def _on_inv(self, msg: Message) -> None:
        line = self.cache.invalidate(msg.block)
        # A Modified line can be INVed only by the L2-eviction recall path;
        # its data rides back as a writeback so memory stays current.
        if line is not None and line.state == MODIFIED:
            self._write_back(msg.block)
        if line is None:
            # The INV may have overtaken a read fill still in flight on
            # another virtual channel; remember to drop the line once the
            # data lands, else this cache becomes an invisible sharer.
            entry = self.mshrs.lookup(msg.block)
            if entry is not None and not entry.is_write:
                entry.invalidate_on_fill = True
        self.send(
            Message(
                mtype="INV_ACK", block=msg.block, src=self.node, dst=msg.src
            )
        )

    def _stash_if_fill_in_flight(self, msg: Message) -> bool:
        """Forward-overtakes-grant race: the home granted us the block and
        immediately forwarded the next requester to us, but the forward
        beat our fill through the network.  Park it on the MSHR entry and
        service it once the data lands."""
        entry = self.mshrs.lookup(msg.block)
        if entry is not None:
            if entry.pending_forward is not None:
                raise RuntimeError(
                    f"two forwards in flight for block {msg.block:#x} at "
                    f"node {self.node}: the home failed to serialize"
                )
            entry.pending_forward = msg
            return True
        return False

    def _on_fwd_gets(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block)
        if line is not None and line.state in (MODIFIED, EXCLUSIVE):
            line.state = SHARED
            line.dirty = False
        elif msg.block in self.writeback_buffer:
            # PUTX crossed the forward on the wire; serve from the
            # writeback buffer and let the home drop the stale PUTX.
            self.writeback_buffer[msg.block] = False
        elif self._stash_if_fill_in_flight(msg):
            # Forwards target *owners*; without an M/E copy here, the
            # forward must concern the ownership our outstanding request
            # is about to receive (it overtook the grant).  A stale S copy
            # does not make us the owner either.
            return
        self.send(
            Message(
                mtype="OWNER_DATA",
                block=msg.block,
                src=self.node,
                dst=msg.src,
                requester=msg.requester,
            )
        )

    def _on_fwd_getx(self, msg: Message) -> None:
        line = self.cache.lookup(msg.block)
        if line is not None and line.state in (MODIFIED, EXCLUSIVE):
            self.cache.invalidate(msg.block)
        elif msg.block in self.writeback_buffer:
            self.writeback_buffer[msg.block] = False
        elif self._stash_if_fill_in_flight(msg):
            return
        else:
            # Silent-eviction fallback: the home still thinks we own the
            # block; any stale copy must go before we acknowledge.
            self.cache.invalidate(msg.block)
        self.send(
            Message(
                mtype="OWNER_DATA",
                block=msg.block,
                src=self.node,
                dst=msg.src,
                requester=msg.requester,
            )
        )

    def _on_wb_ack(self, msg: Message) -> None:
        self.writeback_buffer.pop(msg.block, None)

    # -- invariants (used by tests) ---------------------------------------------
    def state_of(self, block: int) -> str:
        line = self.cache.probe(block)
        return line.state if line is not None else INVALID


@dataclass
class DirectoryEntry:
    """Directory state for one block with L1 copies."""

    state: str  # SHARED or MODIFIED (E is tracked as MODIFIED-with-clean)
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None


@dataclass
class _Transaction:
    """An in-flight transaction serializing a block at its home."""

    kind: str  # "fetch", "fwd_gets", "fwd_getx", "inv_collect"
    requester: int
    is_write: bool
    pending_acks: int = 0


class L2DirectoryController:
    """One home bank of the shared L2, with its directory slice."""

    def __init__(
        self,
        node: int,
        cache_config: CacheConfig,
        home_of: Callable[[int], int],
        mc_of: Callable[[int], int],
        send: SendFn,
    ) -> None:
        self.node = node
        self.cache = SetAssociativeCache(cache_config)
        self.home_of = home_of
        self.mc_of = mc_of
        self.send = send
        self.directory: Dict[int, DirectoryEntry] = {}
        self.busy: Dict[int, _Transaction] = {}
        self.waiting: Dict[int, Deque[Message]] = {}
        self.requests_served = 0

    # -- dispatch ------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        handler = {
            "GETS": self._on_request,
            "GETX": self._on_request,
            "PUTX": self._on_putx,
            "INV_ACK": self._on_inv_ack,
            "OWNER_DATA": self._on_owner_data,
            "MEM_DATA": self._on_mem_data,
        }.get(msg.mtype)
        if handler is None:
            raise ValueError(f"L2 at node {self.node} got unexpected {msg.mtype}")
        handler(msg)

    # -- requests ---------------------------------------------------------------
    def _on_request(self, msg: Message) -> None:
        if msg.block in self.busy:
            self.waiting.setdefault(msg.block, deque()).append(msg)
            return
        self._start_request(msg)

    def _start_request(self, msg: Message) -> None:
        block = msg.block
        is_write = msg.mtype == "GETX"
        entry = self.directory.get(block)
        in_l2 = self.cache.lookup(block) is not None

        if entry is not None and entry.state == MODIFIED and entry.owner != msg.src:
            kind = "fwd_getx" if is_write else "fwd_gets"
            self.busy[block] = _Transaction(
                kind=kind, requester=msg.src, is_write=is_write
            )
            self.send(
                Message(
                    mtype="FWD_GETX" if is_write else "FWD_GETS",
                    block=block,
                    src=self.node,
                    dst=entry.owner,
                    requester=msg.src,
                )
            )
            return

        if not in_l2:
            self.busy[block] = _Transaction(
                kind="fetch", requester=msg.src, is_write=is_write
            )
            self.send(
                Message(
                    mtype="MEM_READ", block=block, src=self.node, dst=self.mc_of(block)
                )
            )
            return

        if is_write:
            sharers = set(entry.sharers) if entry else set()
            if entry is not None and entry.owner is not None:
                sharers.add(entry.owner)
            sharers.discard(msg.src)
            if sharers:
                self.busy[block] = _Transaction(
                    kind="inv_collect",
                    requester=msg.src,
                    is_write=True,
                    pending_acks=len(sharers),
                )
                for sharer in sharers:
                    self.send(
                        Message(
                            mtype="INV", block=block, src=self.node, dst=sharer
                        )
                    )
                return
            self._grant(block, msg.src, "DATA_X")
            return

        # Read with no remote Modified owner.
        if entry is None:
            self._grant(block, msg.src, "DATA_E")
        else:
            self._grant(block, msg.src, "DATA")

    def _grant(
        self, block: int, requester: int, mtype: str, via_memory: bool = False
    ) -> None:
        entry = self.directory.get(block)
        if mtype == "DATA_X" or mtype == "DATA_E":
            self.directory[block] = DirectoryEntry(state=MODIFIED, owner=requester)
        else:
            if entry is None or entry.state != SHARED:
                entry = DirectoryEntry(state=SHARED)
                self.directory[block] = entry
            entry.sharers.add(requester)
            entry.owner = None
        self.requests_served += 1
        self.send(
            Message(
                mtype=mtype,
                block=block,
                src=self.node,
                dst=requester,
                via_memory=via_memory,
            )
        )
        self._drain_waiters(block)

    def _drain_waiters(self, block: int) -> None:
        queue = self.waiting.get(block)
        if queue and block not in self.busy:
            next_msg = queue.popleft()
            if not queue:
                del self.waiting[block]
            self._start_request(next_msg)

    # -- transaction completions -----------------------------------------------
    def _on_owner_data(self, msg: Message) -> None:
        txn = self.busy.pop(msg.block, None)
        if txn is None:
            return  # late data from a recalled line: memory write-through
        line = self.cache.lookup(msg.block)
        if line is not None:
            line.dirty = True
        if txn.kind == "fwd_gets":
            entry = DirectoryEntry(state=SHARED)
            entry.sharers.update({msg.src, txn.requester})
            self.directory[msg.block] = entry
            self.requests_served += 1
            self.send(
                Message(
                    mtype="DATA", block=msg.block, src=self.node, dst=txn.requester
                )
            )
        else:  # fwd_getx
            self.directory[msg.block] = DirectoryEntry(
                state=MODIFIED, owner=txn.requester
            )
            self.requests_served += 1
            self.send(
                Message(
                    mtype="DATA_X", block=msg.block, src=self.node, dst=txn.requester
                )
            )
        self._drain_waiters(msg.block)

    def _on_inv_ack(self, msg: Message) -> None:
        txn = self.busy.get(msg.block)
        if txn is None or txn.kind != "inv_collect":
            return  # ack for a fire-and-forget eviction INV
        txn.pending_acks -= 1
        if txn.pending_acks > 0:
            return
        del self.busy[msg.block]
        self.directory.pop(msg.block, None)
        self._grant(msg.block, txn.requester, "DATA_X")

    def _on_mem_data(self, msg: Message) -> None:
        txn = self.busy.pop(msg.block, None)
        victim = self.cache.insert(msg.block, SHARED)
        if victim is not None:
            self._evict(victim)
        if txn is None:
            return
        if txn.is_write:
            self._grant(msg.block, txn.requester, "DATA_X", via_memory=True)
        else:
            self._grant(msg.block, txn.requester, "DATA_E", via_memory=True)

    def _on_putx(self, msg: Message) -> None:
        entry = self.directory.get(msg.block)
        if entry is not None and entry.owner == msg.src:
            del self.directory[msg.block]
            line = self.cache.lookup(msg.block)
            if line is not None:
                line.dirty = True
        self.send(
            Message(mtype="WB_ACK", block=msg.block, src=self.node, dst=msg.src)
        )

    def _evict(self, victim) -> None:
        """Inclusive-L2 eviction: recall L1 copies (fire-and-forget) and
        write dirty data back to memory."""
        entry = self.directory.pop(victim.block, None)
        if entry is not None:
            targets = set(entry.sharers)
            if entry.owner is not None:
                targets.add(entry.owner)
            for target in targets:
                self.send(
                    Message(
                        mtype="INV", block=victim.block, src=self.node, dst=target
                    )
                )
        if victim.dirty:
            self.send(
                Message(
                    mtype="MEM_WRITE",
                    block=victim.block,
                    src=self.node,
                    dst=self.mc_of(victim.block),
                )
            )
