"""Set-associative caches and miss-status handling registers.

Timing-model caches: they track tags, per-line coherence state and LRU
order, but no data values (the workloads are synthetic address streams).
Used for both the private L1s and the shared L2 banks (Table 2: 32 KB
4-way L1, 1 MB 16-way L2 bank, 128 B lines).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# MESI stability states for cached lines.
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"
INVALID = "I"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache (Table 2 values as defaults)."""

    size_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = 128
    latency: int = 2
    # For banked caches: number of low block-number bits consumed by the
    # bank interleave.  The set index is taken from the bits *above* the
    # interleave, else every bank would only ever use 1/2^shift of its
    # sets (all blocks homed to one bank share the interleave residue).
    interleave_shift: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity x block size"
            )
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.interleave_shift < 0:
            raise ValueError("interleave_shift must be >= 0")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)

    def set_index(self, address: int) -> int:
        block_number = address // self.block_bytes
        return (block_number >> self.interleave_shift) % self.num_sets

    def block_address(self, address: int) -> int:
        return address - (address % self.block_bytes)


@dataclass
class CacheLine:
    """One resident block."""

    block: int
    state: str = INVALID
    dirty: bool = False


class SetAssociativeCache:
    """LRU set-associative tag store with per-line coherence state."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # One LRU-ordered map per set: block address -> CacheLine.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_for(self, block: int) -> OrderedDict:
        return self._sets[self.config.set_index(block)]

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Line holding ``address`` (in any valid state), or None."""
        block = self.config.block_address(address)
        entry = self._set_for(block).get(block)
        if entry is not None and touch:
            self._set_for(block).move_to_end(block)
        return entry

    def probe(self, address: int) -> Optional[CacheLine]:
        """Lookup without disturbing LRU order (for diagnostics/tests)."""
        return self.lookup(address, touch=False)

    def access(self, address: int) -> Tuple[bool, Optional[CacheLine]]:
        """Demand lookup, counting hit/miss statistics."""
        line = self.lookup(address)
        if line is not None:
            self.hits += 1
            return True, line
        self.misses += 1
        return False, None

    def victim_for(self, address: int) -> Optional[CacheLine]:
        """Line that :meth:`insert` would evict for ``address``."""
        block = self.config.block_address(address)
        cache_set = self._set_for(block)
        if block in cache_set or len(cache_set) < self.config.associativity:
            return None
        return next(iter(cache_set.values()))

    def insert(self, address: int, state: str) -> Optional[CacheLine]:
        """Install a block; returns the evicted line, if any.

        Inserting a block that is already resident updates its state
        instead of evicting.
        """
        block = self.config.block_address(address)
        cache_set = self._set_for(block)
        if block in cache_set:
            line = cache_set[block]
            line.state = state
            cache_set.move_to_end(block)
            return None
        victim = None
        if len(cache_set) >= self.config.associativity:
            _, victim = cache_set.popitem(last=False)
        cache_set[block] = CacheLine(block=block, state=state)
        return victim

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Drop a block; returns the removed line, if it was present."""
        block = self.config.block_address(address)
        return self._set_for(block).pop(block, None)

    def lines(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class MSHREntry:
    """One outstanding miss and its merged waiters."""

    block: int
    is_write: bool
    issued_at: int
    waiters: List[object] = field(default_factory=list)
    # Set when an invalidation arrives while the fill is still in flight
    # (the INV overtook the DATA on a different virtual channel): the line
    # is installed, consumed by the waiters, then dropped immediately.
    invalidate_on_fill: bool = False
    # A FWD_GETS/FWD_GETX that overtook our own grant (the home granted us
    # ownership and immediately forwarded the next requester; the forward
    # won the race through the network).  Serviced right after the fill.
    pending_forward: Optional[object] = None


class MSHRFile:
    """Miss-status holding registers: merge and bound outstanding misses."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}

    def lookup(self, block: int) -> Optional[MSHREntry]:
        return self._entries.get(block)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    def allocate(self, block: int, is_write: bool, cycle: int) -> MSHREntry:
        if block in self._entries:
            raise ValueError(f"MSHR already holds block {block:#x}")
        if self.full:
            raise RuntimeError("MSHR file is full")
        entry = MSHREntry(block=block, is_write=is_write, issued_at=cycle)
        self._entries[block] = entry
        return entry

    def release(self, block: int) -> MSHREntry:
        try:
            return self._entries.pop(block)
        except KeyError:
            raise KeyError(f"no MSHR entry for block {block:#x}") from None
