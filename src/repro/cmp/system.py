"""The assembled CMP: tiles, coherence and the network, lock-stepped.

One :class:`CmpSystem` is the paper's Table 2 platform: an N x N mesh
where every node hosts a core + private L1 + shared-L2 bank + router, with
memory controllers attached at configurable nodes.  The system advances
the component models and the cycle-accurate network in lock step; every
coherence message is a real packet subject to routing, contention and
flow control.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cmp.cache import EXCLUSIVE, MODIFIED, SHARED, CacheConfig
from repro.cmp.coherence import (
    DirectoryEntry,
    L1Controller,
    L2DirectoryController,
    Message,
)
from repro.cmp.core_model import CoreConfig, TraceCore, large_core_config
from repro.cmp.memory import MemoryConfig, MemoryController
from repro.core.layouts import Layout, build_network, memory_controller_placement
from repro.noc.routing import Routing
from repro.traffic.trace import TraceRecord

# Message-type -> handling component at the destination node.
_L1_MESSAGES = frozenset(
    {"DATA", "DATA_E", "DATA_X", "INV", "FWD_GETS", "FWD_GETX", "WB_ACK"}
)
_L2_MESSAGES = frozenset(
    {"GETS", "GETX", "PUTX", "INV_ACK", "OWNER_DATA", "MEM_DATA"}
)
_MC_MESSAGES = frozenset({"MEM_READ", "MEM_WRITE"})


@dataclass(frozen=True)
class CmpConfig:
    """Platform parameters (Table 2 defaults)."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, associativity=4, block_bytes=128, latency=2
        )
    )
    l2_bank: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1024 * 1024, associativity=16, block_bytes=128, latency=6
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    mc_placement: str = "corners"
    mshr_per_core: int = 16
    local_delivery_latency: int = 1
    # Cores begin execution spread over this many cycles (deterministic,
    # per-node) so measurement avoids a cycle-0 thundering herd.
    start_stagger_window: int = 256


@dataclass
class MissRecord:
    """One completed L1 miss (for request-latency statistics)."""

    core: int
    block: int
    latency: int
    via_memory: bool
    is_write: bool


class CmpSystem:
    """A CMP instance bound to one network layout."""

    def __init__(
        self,
        layout: Layout,
        traces: Dict[int, Sequence[TraceRecord]],
        config: Optional[CmpConfig] = None,
        core_configs: Optional[Dict[int, CoreConfig]] = None,
        routing: Optional[Routing] = None,
        flit_mode: str = "paper",
    ) -> None:
        self.layout = layout
        self.config = config or CmpConfig()
        self.network = build_network(layout, routing=routing, flit_mode=flit_mode)
        self.network.on_delivery = self._on_packet
        num_nodes = self.network.topology.num_nodes
        if set(traces) - set(range(num_nodes)):
            raise ValueError("trace map names cores outside the mesh")
        # L2 banks index their sets above the node-interleave bits.
        if self.config.l2_bank.interleave_shift == 0:
            self.config = dataclasses.replace(
                self.config,
                l2_bank=dataclasses.replace(
                    self.config.l2_bank,
                    interleave_shift=(num_nodes - 1).bit_length(),
                ),
            )

        block_bytes = self.config.l1.block_bytes
        mc_nodes = memory_controller_placement(
            self.config.mc_placement, layout.mesh_size
        )
        self._mc_nodes = mc_nodes

        def home_of(block: int) -> int:
            return (block // block_bytes) % num_nodes

        def mc_of(block: int) -> int:
            return mc_nodes[(block // block_bytes) % len(mc_nodes)]

        self.home_of = home_of
        self.mc_of = mc_of

        self._events: List = []
        self._event_seq = itertools.count()

        self.l1s: Dict[int, L1Controller] = {}
        self.l2s: Dict[int, L2DirectoryController] = {}
        self.cores: Dict[int, TraceCore] = {}
        for node in range(num_nodes):
            l1 = L1Controller(
                node,
                self.config.l1,
                self.config.mshr_per_core,
                home_of,
                self.send_message,
                self.schedule,
            )
            l1.on_miss_complete = self._record_miss_factory(node)
            self.l1s[node] = l1
            self.l2s[node] = L2DirectoryController(
                node, self.config.l2_bank, home_of, mc_of, self.send_message
            )
        self.mcs: Dict[int, MemoryController] = {
            node: MemoryController(node, self.config.memory, self.send_message)
            for node in mc_nodes
        }
        core_configs = core_configs or {}
        window = max(1, self.config.start_stagger_window)
        for node, trace in traces.items():
            cfg = core_configs.get(node, large_core_config())
            self.cores[node] = TraceCore(
                node,
                cfg,
                trace,
                self.l1s[node],
                start_cycle=(node * 37) % window,
            )

        self.miss_records: List[MissRecord] = []
        self.messages_sent = 0

    # -- plumbing ---------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.network.cycle

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` cycles (component processing time)."""
        heapq.heappush(
            self._events, (self.cycle + max(0, delay), next(self._event_seq), fn)
        )

    def send_message(self, msg: Message) -> None:
        """Inject a coherence message into the network (or deliver locally)."""
        self.messages_sent += 1
        if msg.src == msg.dst:
            self.schedule(
                self.config.local_delivery_latency,
                lambda: self._dispatch(msg),
            )
            return
        packet = self.network.make_packet(
            msg.src,
            msg.dst,
            payload_bits=msg.payload_bits,
            packet_class=msg.mtype,
            payload=msg,
        )
        packet.measured = self.network.measuring
        self.network.enqueue(packet)

    def _on_packet(self, packet, cycle: int) -> None:
        msg = packet.payload
        if not isinstance(msg, Message):
            raise TypeError(f"CMP network delivered a non-coherence packet: {packet}")
        if msg.mtype in _L2_MESSAGES:
            delay = self.config.l2_bank.latency
        elif msg.mtype in _L1_MESSAGES:
            delay = 1
        else:
            delay = 0
        self.schedule(delay, lambda: self._dispatch(msg))

    def _dispatch(self, msg: Message) -> None:
        if msg.mtype in _L1_MESSAGES:
            self.l1s[msg.dst].handle(msg)
        elif msg.mtype in _L2_MESSAGES:
            self.l2s[msg.dst].handle(msg)
        elif msg.mtype in _MC_MESSAGES:
            try:
                mc = self.mcs[msg.dst]
            except KeyError:
                raise RuntimeError(
                    f"memory message routed to node {msg.dst} without a "
                    "memory controller"
                ) from None
            mc.handle(msg, self.cycle)
        else:
            raise ValueError(f"unroutable message type {msg.mtype}")

    def _record_miss_factory(self, node: int):
        def record(block: int, issued_at: int, via_memory: bool, is_write: bool) -> None:
            self.miss_records.append(
                MissRecord(
                    core=node,
                    block=block,
                    latency=self.cycle - issued_at,
                    via_memory=via_memory,
                    is_write=is_write,
                )
            )

        return record

    # -- functional warmup ------------------------------------------------------
    def warm_caches(self) -> None:
        """Functionally pre-load caches and directory from the traces.

        Replays every core's address stream (round-robin interleaved)
        through the tag stores and directory without any timing, so the
        timed run starts from a warm state -- the trace-driven equivalent
        of the paper's warmup phase.  Coherence metadata is kept exactly
        consistent (single writer, inclusive L2) so the protocol starts
        from a legal state.
        """
        from repro.traffic.workloads import FAR_REGION_BASE

        iterators = {
            node: iter(core.trace) for node, core in self.cores.items()
        }
        block_of = self.config.l1.block_address
        while iterators:
            finished = []
            for node, it in iterators.items():
                record = next(it, None)
                if record is None:
                    finished.append(node)
                    continue
                if record.address >= FAR_REGION_BASE:
                    # Fresh blocks stay cold: they model the workload's
                    # compulsory DRAM misses.
                    continue
                self._warm_access(node, block_of(record.address), record.is_write)
            for node in finished:
                del iterators[node]

    def _warm_access(self, core: int, block: int, is_write: bool) -> None:
        home = self.home_of(block)
        l2 = self.l2s[home]
        if l2.cache.lookup(block) is None:
            l2_victim = l2.cache.insert(block, SHARED)
            if l2_victim is not None:
                self._warm_evict_l2(home, l2_victim.block)
        directory = l2.directory
        l1 = self.l1s[core]
        entry = directory.get(block)
        if is_write:
            if entry is not None:
                for other in set(entry.sharers) | (
                    {entry.owner} if entry.owner is not None else set()
                ):
                    if other != core:
                        self.l1s[other].cache.invalidate(block)
            directory[block] = DirectoryEntry(state=MODIFIED, owner=core)
            victim = l1.cache.insert(block, MODIFIED)
            l1.cache.lookup(block).dirty = True
        else:
            existing = l1.cache.probe(block)
            if existing is not None:
                # Already coherent from an earlier warm access; just touch.
                l1.cache.lookup(block)
                return
            if entry is None:
                directory[block] = DirectoryEntry(state=MODIFIED, owner=core)
                victim = l1.cache.insert(block, EXCLUSIVE)
            elif entry.state == MODIFIED and entry.owner != core:
                owner_line = self.l1s[entry.owner].cache.probe(block)
                if owner_line is not None:
                    owner_line.state = SHARED
                    owner_line.dirty = False
                l2.cache.lookup(block).dirty = True
                new_entry = DirectoryEntry(state=SHARED)
                new_entry.sharers.update({entry.owner, core})
                directory[block] = new_entry
                victim = l1.cache.insert(block, SHARED)
            else:
                entry.sharers.add(core)
                if entry.state == MODIFIED:
                    # Our own stale ownership without the line (evicted
                    # silently); re-enter as a plain sharer.
                    entry.state = SHARED
                    entry.owner = None
                victim = l1.cache.insert(block, SHARED)
        if victim is not None:
            self._warm_evict_l1(core, victim.block)

    def _warm_evict_l1(self, core: int, block: int) -> None:
        home = self.home_of(block)
        entry = self.l2s[home].directory.get(block)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
            line = self.l2s[home].cache.lookup(block)
            if line is not None:
                line.dirty = True
        if not entry.sharers and entry.owner is None:
            del self.l2s[home].directory[block]
        elif entry.state == MODIFIED and entry.owner is None:
            entry.state = SHARED

    def _warm_evict_l2(self, home: int, block: int) -> None:
        entry = self.l2s[home].directory.pop(block, None)
        if entry is None:
            return
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        for target in targets:
            self.l1s[target].cache.invalidate(block)

    # -- simulation loop -----------------------------------------------------------
    def tick(self) -> None:
        """Advance the whole platform by one clock cycle."""
        cycle = self.cycle
        while self._events and self._events[0][0] <= cycle:
            _, _, fn = heapq.heappop(self._events)
            fn()
        for core in self.cores.values():
            core.step(cycle)
        for mc in self.mcs.values():
            mc.tick(cycle)
        self.network.step()

    def run(
        self,
        max_cycles: int = 2_000_000,
        until_done: bool = True,
    ) -> int:
        """Run until every core finishes its trace (or ``max_cycles``).

        Returns the cycle count at stop.  Raises if ``until_done`` and the
        deadline passes with cores still outstanding -- that indicates a
        protocol or network deadlock.
        """
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            if until_done and all(core.done for core in self.cores.values()):
                return self.cycle
            self.tick()
        if until_done and not all(core.done for core in self.cores.values()):
            stuck = [c for c, core in self.cores.items() if not core.done]
            raise RuntimeError(
                f"CMP failed to finish within {max_cycles} cycles; "
                f"cores still running: {stuck[:8]}{'...' if len(stuck) > 8 else ''}"
            )
        return self.cycle

    # -- results ---------------------------------------------------------------------
    def per_core_ipc(self) -> Dict[int, float]:
        return {node: core.ipc(self.cycle) for node, core in self.cores.items()}

    def mean_ipc(self) -> float:
        values = self.per_core_ipc().values()
        return sum(values) / len(values)

    def miss_latency_stats(self, via_memory_only: bool = False) -> Dict[str, float]:
        """Mean/std of L1 miss round-trip latencies (cycles)."""
        records = [
            r for r in self.miss_records if r.via_memory or not via_memory_only
        ]
        if not records:
            raise ValueError("no miss records collected")
        latencies = [r.latency for r in records]
        mean = sum(latencies) / len(latencies)
        variance = sum((l - mean) ** 2 for l in latencies) / len(latencies)
        return {
            "count": float(len(latencies)),
            "mean": mean,
            "std": variance**0.5,
            "normalized_std": variance**0.5 / mean if mean else 0.0,
        }

    @property
    def mc_nodes(self) -> List[int]:
        return list(self._mc_nodes)
