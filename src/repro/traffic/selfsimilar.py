"""Self-similar injection process.

The paper's fifth synthetic workload is *self-similar* traffic.  Long-range
dependent arrivals are generated the standard way: each node is an ON/OFF
source whose ON and OFF period lengths are Pareto-distributed (heavy
tailed, 1 < alpha < 2); aggregating many such sources yields self-similar
traffic (Willinger et al.).  During an ON period the node injects with a
fixed per-cycle probability; during OFF it is silent.  The ON probability
is chosen so the long-run average injection rate matches the requested
load.
"""

from __future__ import annotations

import random


class ParetoOnOffSource:
    """One node's ON/OFF state machine with Pareto dwell times."""

    def __init__(
        self,
        rate: float,
        alpha_on: float = 1.9,
        alpha_off: float = 1.25,
        mean_on: float = 20.0,
        rng: random.Random = None,
    ) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError(f"rate must be in (0, 1), got {rate}")
        if not (1.0 < alpha_on < 2.0 and 1.0 < alpha_off < 2.0):
            raise ValueError("Pareto shapes must lie in (1, 2)")
        self.rng = rng or random.Random()
        self.alpha_on = alpha_on
        self.alpha_off = alpha_off
        self.mean_on = mean_on
        # duty cycle needed so that duty * p_on == rate; pick p_on high
        # enough to reach the requested average but capped at 1.
        self.p_on = min(1.0, rate * 3.0)
        duty = rate / self.p_on
        if duty >= 1.0:
            duty = 0.999
        self.mean_off = mean_on * (1.0 - duty) / duty
        self.on = self.rng.random() < duty
        self.remaining = self._draw_period()

    def _pareto(self, alpha: float, mean: float) -> float:
        # Pareto with shape alpha has mean xm * alpha / (alpha - 1);
        # solve for the scale xm that yields the requested mean.
        xm = mean * (alpha - 1.0) / alpha
        return xm / (self.rng.random() ** (1.0 / alpha))

    def _draw_period(self) -> int:
        mean = self.mean_on if self.on else self.mean_off
        alpha = self.alpha_on if self.on else self.alpha_off
        return max(1, int(round(self._pareto(alpha, mean))))

    def fires(self) -> bool:
        """Advance one cycle; True when a packet should be injected."""
        if self.remaining <= 0:
            self.on = not self.on
            self.remaining = self._draw_period()
        self.remaining -= 1
        return self.on and self.rng.random() < self.p_on


class SelfSimilarInjector:
    """Per-node bank of Pareto ON/OFF sources.

    Drop-in replacement for the Bernoulli injection decision in
    :func:`repro.traffic.runner.run_synthetic` (pass as ``injector``).
    """

    name = "self_similar"

    def __init__(
        self, num_nodes: int, rate: float, seed: int = 0
    ) -> None:
        self.sources = [
            ParetoOnOffSource(rate, rng=random.Random(seed * 1_000_003 + node))
            for node in range(num_nodes)
        ]

    def fires(self, node: int, rng: random.Random) -> bool:
        return self.sources[node].fires()


class BernoulliInjector:
    """Memoryless injection: each node fires with probability ``rate``."""

    name = "bernoulli"

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate

    def fires(self, node: int, rng: random.Random) -> bool:
        return rng.random() < self.rate
