"""Synthetic application workload profiles.

The paper evaluates four commercial workloads (SAP, SPECjbb, TPC-C, SJAS --
traces collected at Intel and not publicly available), six PARSEC
benchmarks (ferret, facesim, vips, canneal, dedup, streamcluster) and
SPEC2K6 libquantum.  We substitute parameterized synthetic memory-reference
generators, one profile per benchmark, following the published
characterizations of these workloads (memory intensity, read/write mix,
working-set size, data sharing, and access locality).  The network and the
coherence protocol see a request stream with the same statistical shape, so
the *relative* network behaviour the paper reports is preserved; see
DESIGN.md's substitution table.

Two consumers:

* the CMP model replays :func:`generate_core_trace` streams through cores,
  caches and the directory protocol (Figures 11-14);
* network-only studies use :func:`app_packet_stream`, which abstracts each
  memory access into a request/response packet pair between a core and the
  home node of the accessed block (Figure 10).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.traffic.trace import TraceRecord

BLOCK_BYTES = 128  # cache line size, Table 2
ADDRESS_PACKET_BITS = 64
DATA_PACKET_BITS = 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's memory behaviour.

    Attributes:
        name: short name used in the paper's figures.
        suite: ``"commercial"``, ``"parsec"`` or ``"spec"``.
        mem_fraction: fraction of dynamic instructions that access memory;
            determines the mean non-memory gap between trace records.
        write_fraction: fraction of memory accesses that are stores.
        private_blocks: per-core private working set, in cache blocks.
        sharing_fraction: probability an access targets the shared pool.
        shared_blocks: size of the globally shared block pool.
        locality_skew: exponent >= 1 shaping the access distribution over
            the working set (higher concentrates accesses on hot blocks).
        streaming: when True, private accesses walk sequentially (spatial
            locality, low temporal reuse) instead of sampling the skewed
            distribution -- the libquantum/streamcluster flavour.
    """

    name: str
    suite: str
    mem_fraction: float
    write_fraction: float
    private_blocks: int
    sharing_fraction: float
    shared_blocks: int
    locality_skew: float
    streaming: bool = False
    # Two-tier locality: ``hot_fraction`` of private accesses go to a hot
    # set of ``hot_blocks`` lines (sized to be mostly L1-resident), the
    # rest to the cold tail of the working set.  Real workloads see L1 hit
    # rates near 90%; a single power-law over the full working set cannot
    # deliver that with a 256-line L1.
    hot_fraction: float = 0.9
    hot_blocks: int = 160
    # Writes to shared data are rarer than to private data (locks and
    # producer/consumer buffers, not the bulk of stores); this factor
    # scales write_fraction for shared accesses.
    shared_write_scale: float = 0.3
    # Cores share mostly within clusters of this size (pipeline stages,
    # warehouse groups) rather than all-to-all.
    sharing_cluster: int = 8
    # Fraction of accesses touching fresh, never-reused blocks (cold/
    # compulsory misses that reach DRAM); models the workload's L2 MPKI
    # and keeps the memory controllers busy.
    far_fraction: float = 0.015

    def __post_init__(self) -> None:
        if not 0.0 < self.mem_fraction <= 1.0:
            raise ValueError(f"mem_fraction out of range: {self.mem_fraction}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction out of range: {self.write_fraction}"
            )
        if not 0.0 <= self.sharing_fraction < 1.0:
            raise ValueError(
                f"sharing_fraction out of range: {self.sharing_fraction}"
            )
        if self.locality_skew < 1.0:
            raise ValueError(f"locality_skew must be >= 1: {self.locality_skew}")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between consecutive accesses."""
        return (1.0 - self.mem_fraction) / self.mem_fraction


# Profiles follow published characterizations: commercial server workloads
# are memory-intensive with substantial read-write sharing; PARSEC spans
# streaming kernels (streamcluster), pointer-chasing with poor locality
# (canneal) and pipeline-parallel sharing (ferret, dedup); libquantum is a
# single-threaded sequential streaming benchmark.
WORKLOADS: Dict[str, WorkloadProfile] = {
    "SAP": WorkloadProfile(
        "SAP", "commercial", 0.34, 0.30, 4096, 0.10, 8192, 1.6,
        hot_fraction=0.95, hot_blocks=104, far_fraction=0.008,
    ),
    "SPECjbb": WorkloadProfile(
        "SPECjbb", "commercial", 0.30, 0.28, 3072, 0.08, 6144, 1.7,
        hot_fraction=0.96, hot_blocks=96, far_fraction=0.006,
    ),
    "TPC-C": WorkloadProfile(
        "TPC-C", "commercial", 0.36, 0.34, 6144, 0.12, 12288, 1.5,
        hot_fraction=0.94, hot_blocks=112, far_fraction=0.010,
    ),
    "SJAS": WorkloadProfile(
        "SJAS", "commercial", 0.31, 0.29, 3072, 0.10, 6144, 1.7,
        hot_fraction=0.95, hot_blocks=96, far_fraction=0.008,
    ),
    "frrt": WorkloadProfile(
        "frrt", "parsec", 0.26, 0.22, 2048, 0.07, 4096, 2.0,
        hot_fraction=0.97, hot_blocks=88, far_fraction=0.004,
    ),
    "fsim": WorkloadProfile(
        "fsim", "parsec", 0.30, 0.33, 4096, 0.04, 2048, 1.4,
        hot_fraction=0.96, hot_blocks=104, far_fraction=0.006,
    ),
    "vips": WorkloadProfile(
        "vips", "parsec", 0.24, 0.26, 2048, 0.03, 2048, 1.9,
        hot_fraction=0.97, hot_blocks=88, far_fraction=0.004,
    ),
    "canl": WorkloadProfile(
        "canl", "parsec", 0.33, 0.20, 8192, 0.12, 16384, 1.1,
        hot_fraction=0.88, hot_blocks=128, far_fraction=0.014,  # pointer chasing
    ),
    "ddup": WorkloadProfile(
        "ddup", "parsec", 0.29, 0.25, 3072, 0.08, 6144, 1.8,
        hot_fraction=0.96, hot_blocks=96, far_fraction=0.006,
    ),
    "sclst": WorkloadProfile(
        "sclst", "parsec", 0.35, 0.15, 6144, 0.05, 4096, 1.2,
        streaming=True, hot_fraction=0.94, hot_blocks=96, far_fraction=0.010,
    ),
    "libquantum": WorkloadProfile(
        "libquantum", "spec", 0.40, 0.25, 16384, 0.0, 1, 1.0,
        streaming=True, hot_fraction=0.93, hot_blocks=80, far_fraction=0.016,
    ),
}


def commercial_workloads() -> List[WorkloadProfile]:
    return [w for w in WORKLOADS.values() if w.suite == "commercial"]


def parsec_workloads() -> List[WorkloadProfile]:
    return [w for w in WORKLOADS.values() if w.suite == "parsec"]


PRIVATE_REGION_BITS = 34  # per-core private regions are 2^34 bytes apart
SHARED_REGION_BASE = 1 << 44
# Fresh (never reused) blocks live here; the CMP warmup skips this region
# so these stay compulsory DRAM misses during the timed run.
FAR_REGION_BASE = 1 << 50


def _skewed_index(rng: random.Random, size: int, skew: float) -> int:
    """Sample [0, size) with a power-law bias toward low indices."""
    return min(size - 1, int(size * (rng.random() ** skew)))


WORD_BYTES = 8


class _CoreAddressStream:
    """Stateful per-core address generator for one profile."""

    def __init__(
        self, profile: WorkloadProfile, core_id: int, rng: random.Random
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.core_id = core_id
        # Stagger private regions by a prime block count so different
        # cores' working sets spread over distinct L2 homes and sets
        # (power-of-two-aligned bases would alias every core's block k
        # onto one home bank set).
        self.private_base = ((core_id + 1) << PRIVATE_REGION_BITS) + (
            core_id * 8191 * BLOCK_BYTES
        )
        self.stream_pointer = 0
        # Shared accesses cluster: this core's slice of the shared pool.
        cluster = core_id // max(1, profile.sharing_cluster)
        pool = max(1, profile.shared_blocks)
        self.cluster_size = max(1, pool // 8)
        self.cluster_base = (cluster * self.cluster_size) % pool
        self.far_base = FAR_REGION_BASE + (core_id << 34)
        self.far_counter = 0

    def next_address(self) -> Tuple[int, bool]:
        """Next (address, is_shared) pair."""
        profile, rng = self.profile, self.rng
        if rng.random() < profile.far_fraction:
            address = self.far_base + self.far_counter * BLOCK_BYTES
            self.far_counter += 1
            return address, False
        if rng.random() < profile.sharing_fraction:
            # Mostly intra-cluster sharing with an occasional global touch.
            if rng.random() < 0.9:
                offset = _skewed_index(
                    rng, self.cluster_size, profile.locality_skew
                )
                block = (self.cluster_base + offset) % max(1, profile.shared_blocks)
            else:
                block = _skewed_index(
                    rng, profile.shared_blocks, profile.locality_skew
                )
            return SHARED_REGION_BASE + block * BLOCK_BYTES, True
        if profile.streaming and rng.random() >= profile.hot_fraction:
            # Sequential word-granular walk: spatial locality within a
            # line, no temporal reuse across lines.
            address = self.private_base + self.stream_pointer * WORD_BYTES
            span_words = profile.private_blocks * (BLOCK_BYTES // WORD_BYTES)
            self.stream_pointer = (self.stream_pointer + 1) % span_words
            return address, False
        if rng.random() < profile.hot_fraction:
            block = _skewed_index(rng, profile.hot_blocks, profile.locality_skew)
        else:
            # The cold tail is itself skewed: real reference streams touch
            # near-tail blocks far more often than the deep tail.
            block = profile.hot_blocks + _skewed_index(
                rng,
                max(1, profile.private_blocks - profile.hot_blocks),
                max(2.0, profile.locality_skew),
            )
        return self.private_base + block * BLOCK_BYTES, False


def generate_core_trace(
    profile: WorkloadProfile,
    core_id: int,
    num_records: int,
    seed: int = 0,
) -> List[TraceRecord]:
    """Synthesize one core's memory trace for ``profile``.

    Gaps are geometric with the profile's mean; addresses mix the core's
    private working set with the shared pool.  Deterministic for a given
    ``(profile, core_id, seed)``.
    """
    if num_records < 0:
        raise ValueError(f"num_records must be >= 0, got {num_records}")
    rng = random.Random(
        (seed * 7919 + core_id) * 104729 + zlib.crc32(profile.name.encode()) % 65536
    )
    stream = _CoreAddressStream(profile, core_id, rng)
    p = profile.mem_fraction
    records = []
    for _ in range(num_records):
        # Geometric gap with success probability p has mean (1-p)/p.
        gap = 0
        while rng.random() > p:
            gap += 1
        address, is_shared = stream.next_address()
        write_probability = profile.write_fraction * (
            profile.shared_write_scale if is_shared else 1.0
        )
        records.append(
            TraceRecord(
                gap=gap,
                is_write=rng.random() < write_probability,
                address=address,
            )
        )
    return records


def home_node(address: int, num_nodes: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Home L2 bank (node id) of a block: low-order interleaving.

    Matches the paper's Section 6: "we use the low order address bits above
    the cache line address" (there for memory-controller selection; the
    same interleave maps blocks to L2 banks).
    """
    return (address // block_bytes) % num_nodes


def app_packet_stream(
    profile: WorkloadProfile,
    num_nodes: int,
    seed: int = 0,
) -> Iterator[Tuple[int, int, int]]:
    """Network-level abstraction of a workload: (src, dst, payload_bits).

    Each memory access by core ``c`` to block ``b`` becomes a request
    packet ``c -> home(b)`` followed by a data response ``home(b) -> c``.
    Used by network-only studies (Figure 10) where the full CMP model is
    unnecessary.
    """
    rng = random.Random(seed * 65537 + zlib.crc32(profile.name.encode()) % 65536)
    streams = [
        _CoreAddressStream(profile, core, random.Random(seed * 131 + core))
        for core in range(num_nodes)
    ]
    while True:
        core = rng.randrange(num_nodes)
        address, _is_shared = streams[core].next_address()
        home = home_node(address, num_nodes)
        if home == core:
            home = (home + 1) % num_nodes
        yield (core, home, ADDRESS_PACKET_BITS)
        yield (home, core, DATA_PACKET_BITS)
