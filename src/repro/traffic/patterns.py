"""Synthetic traffic patterns (Section 4's synthetic workloads).

A pattern answers one question: given a source node, where does the next
packet go?  Stateless patterns (transpose, bit-complement, ...) are pure
permutations of the node id; stochastic patterns (uniform random, nearest
neighbour) draw from an RNG supplied per call so that simulations stay
reproducible under a seeded ``random.Random``.
"""

from __future__ import annotations

import random
from typing import List

from repro.noc.topology import Mesh, Topology


class TrafficPattern:
    """Maps a source node to a destination node."""

    name = "abstract"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    def destination(self, src: int, rng: random.Random) -> int:
        raise NotImplementedError

    def _check_src(self, src: int) -> None:
        if not 0 <= src < self.num_nodes:
            raise ValueError(
                f"source {src} out of range [0, {self.num_nodes})"
            )


class UniformRandom(TrafficPattern):
    """Each packet targets a uniformly random node other than the source."""

    name = "uniform_random"

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        dst = rng.randrange(self.num_nodes - 1)
        return dst if dst < src else dst + 1


class NearestNeighbor(TrafficPattern):
    """Each packet targets a random mesh neighbour of the source.

    Needs mesh coordinates, so it is constructed from the topology rather
    than a bare node count.  This is the pattern for which HeteroNoC is
    *worse* than the baseline (the Figure 9 anomaly).
    """

    name = "nearest_neighbor"

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh):
            raise TypeError("NearestNeighbor requires a mesh-like topology")
        super().__init__(topology.num_nodes)
        self._neighbors: List[List[int]] = []
        for node in range(topology.num_nodes):
            row, col = topology.coords(topology.router_of_node(node))
            adjacent = []
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                r, c = row + dr, col + dc
                if 0 <= r < topology.height and 0 <= c < topology.width:
                    adjacent.append(topology.router_at(r, c))
            self._neighbors.append(adjacent)

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        return rng.choice(self._neighbors[src])


class Transpose(TrafficPattern):
    """Node (r, c) of a square mesh sends to node (c, r)."""

    name = "transpose"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        side = int(round(num_nodes ** 0.5))
        if side * side != num_nodes:
            raise ValueError(
                f"transpose needs a square node count, got {num_nodes}"
            )
        self.side = side

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        row, col = divmod(src, self.side)
        dst = col * self.side + row
        if dst == src:
            # Diagonal nodes map to themselves; send somewhere useful
            # instead of self-looping.
            return (src + self.side // 2 * (self.side + 1)) % self.num_nodes
        return dst


class BitComplement(TrafficPattern):
    """Destination is the bitwise complement of the source id."""

    name = "bit_complement"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError(
                f"bit-complement needs a power-of-two node count, got {num_nodes}"
            )

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        return src ^ (self.num_nodes - 1)


class BitReverse(TrafficPattern):
    """Destination is the bit-reversed source id."""

    name = "bit_reverse"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise ValueError(
                f"bit-reverse needs a power-of-two node count, got {num_nodes}"
            )
        self.bits = num_nodes.bit_length() - 1

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        dst = 0
        for bit in range(self.bits):
            if src & (1 << bit):
                dst |= 1 << (self.bits - 1 - bit)
        if dst == src:
            return (src + self.num_nodes // 2) % self.num_nodes
        return dst


class Tornado(TrafficPattern):
    """Node (r, c) sends halfway around its row: to (r, c + k/2 - 1)."""

    name = "tornado"

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        side = int(round(num_nodes ** 0.5))
        if side * side != num_nodes:
            raise ValueError(
                f"tornado needs a square node count, got {num_nodes}"
            )
        self.side = side

    def destination(self, src: int, rng: random.Random) -> int:
        self._check_src(src)
        row, col = divmod(src, self.side)
        shift = max(1, self.side // 2 - 1)
        return row * self.side + (col + shift) % self.side


def pattern_by_name(
    name: str, topology: Topology
) -> TrafficPattern:
    """Construct a pattern from its canonical name.

    ``"self_similar"`` is deliberately absent: self-similarity is a
    property of the injection *process*, handled by
    :class:`repro.traffic.selfsimilar.SelfSimilarInjector` layered over any
    spatial pattern.
    """
    n = topology.num_nodes
    table = {
        "uniform_random": lambda: UniformRandom(n),
        "nearest_neighbor": lambda: NearestNeighbor(topology),
        "transpose": lambda: Transpose(n),
        "bit_complement": lambda: BitComplement(n),
        "bit_reverse": lambda: BitReverse(n),
        "tornado": lambda: Tornado(n),
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; choose from {sorted(table)}"
        ) from None
