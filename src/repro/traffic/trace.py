"""Memory-reference trace format.

The paper's system-level evaluation is trace driven: "Our trace format
consists of load/stores and the number of non-memory instructions between
them" (Section 5.2).  This module defines that record, an in-memory
iterator protocol used by the CMP core model, and a simple line-oriented
text serialization (one record per line: ``<gap> <L|S> <hex address>``)
so traces can be saved and replayed.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Union


@dataclass(frozen=True)
class TraceRecord:
    """One memory operation and the instruction gap preceding it.

    Attributes:
        gap: count of non-memory instructions executed before this access.
        is_write: True for a store, False for a load.
        address: byte address of the access.
    """

    gap: int
    is_write: bool
    address: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError(f"gap must be non-negative, got {self.gap}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    @property
    def instructions(self) -> int:
        """Instructions this record represents (gap plus the access)."""
        return self.gap + 1


class TraceWriter:
    """Writes trace records to a text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        kind = "S" if record.is_write else "L"
        self._stream.write(f"{record.gap} {kind} {record.address:x}\n")
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        for record in records:
            self.write(record)
        return self.records_written


class TraceReader:
    """Iterates trace records from a text stream or a string."""

    def __init__(self, source: Union[IO[str], str]) -> None:
        if isinstance(source, str):
            source = io.StringIO(source)
        self._stream = source

    def __iter__(self) -> Iterator[TraceRecord]:
        for line_number, line in enumerate(self._stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("L", "S"):
                raise ValueError(
                    f"malformed trace record on line {line_number}: {line!r}"
                )
            yield TraceRecord(
                gap=int(parts[0]),
                is_write=parts[1] == "S",
                address=int(parts[2], 16),
            )

    def read_all(self) -> List[TraceRecord]:
        return list(self)


def roundtrip(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Serialize and re-parse records (used by tests as a format check)."""
    buffer = io.StringIO()
    TraceWriter(buffer).write_all(records)
    buffer.seek(0)
    return TraceReader(buffer).read_all()
