"""Traffic generation: synthetic patterns, self-similar sources, traces
and application-profile workload generators."""

from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    NearestNeighbor,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
    pattern_by_name,
)
from repro.traffic.runner import SyntheticRunResult, run_synthetic
from repro.traffic.selfsimilar import SelfSimilarInjector
from repro.traffic.trace import TraceReader, TraceRecord, TraceWriter
from repro.traffic.workloads import (
    WORKLOADS,
    WorkloadProfile,
    commercial_workloads,
    parsec_workloads,
)

__all__ = [
    "BitComplement",
    "BitReverse",
    "NearestNeighbor",
    "SelfSimilarInjector",
    "SyntheticRunResult",
    "Tornado",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "TrafficPattern",
    "Transpose",
    "UniformRandom",
    "WORKLOADS",
    "WorkloadProfile",
    "commercial_workloads",
    "parsec_workloads",
    "pattern_by_name",
    "run_synthetic",
]
