"""Open-loop synthetic-traffic experiment driver.

Mirrors the paper's methodology (Section 4): warm the network up with
unmeasured packets, then measure a window of packets, then keep the offered
load flowing while the measured packets drain.  Latency statistics cover
exactly the measured packets; throughput (accepted traffic) covers every
delivery inside the measurement window.

The paper warms up with 1,000 packets and measures 100,000; a pure-Python
cycle simulator makes that expensive, so the defaults here are smaller and
every experiment harness exposes the knobs.

Observability (see :mod:`repro.obs`): pass ``observer=`` to attach event
hooks for the duration of the run, ``profiler=`` to collect wall-clock
phase timings and cycles/second, and ``progress=`` to receive periodic
:class:`~repro.obs.profiler.Progress` heartbeats with ETA estimates.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.noc.network import Network
from repro.noc.snapshot import (
    SimSnapshot,
    SnapshotError,
    capture,
    load_snapshot,
    save_snapshot,
)
from repro.noc.stats import NetworkStats
from repro.obs.profiler import Progress, RunProfiler
from repro.traffic.patterns import TrafficPattern
from repro.traffic.selfsimilar import BernoulliInjector

#: bump when the runner's checkpoint bookkeeping changes shape; restores
#: refuse (and restart from cycle 0) on mismatch rather than guessing.
CHECKPOINT_FORMAT = 1


class DrainAccountingError(RuntimeError):
    """A measured packet fell through the accounting at end of run.

    Every measured packet must finish as a latency record, an explicit
    loss, or (saturated runs only) a reported unfinished in-flight
    packet; anything else means the driver silently truncated its
    sample."""


@dataclass
class SyntheticRunResult:
    """Outcome of one synthetic-traffic run."""

    stats: NetworkStats
    offered_rate: float
    warmup_packets: int
    measured_packets: int
    total_cycles: int
    saturated: bool
    #: measured packets still in flight when the drain hit its cycle cap
    #: (0 unless ``saturated``); their latency records are missing from
    #: ``stats.records``, so the recorded population is survivorship-biased.
    unfinished_measured_packets: int = 0
    #: measured packets declared lost by the NI recovery layer (only
    #: possible under a fault schedule with bounded retries).
    lost_measured_packets: int = 0
    #: NI/fault-layer counters for the run (empty for fault-free runs):
    #: retransmissions, corrupt/clean deliveries, losses, fault events.
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def avg_latency_cycles(self) -> float:
        return self.stats.avg_latency_cycles

    def avg_latency_ns(self, frequency_ghz: float) -> float:
        return self.stats.avg_latency_ns(frequency_ghz)

    @property
    def throughput_packets_per_node_cycle(self) -> float:
        return self.stats.accepted_packets_per_node_per_cycle


def _offer_load(
    network: Network,
    pattern: TrafficPattern,
    injector,
    rng: random.Random,
    budget: Optional[int] = None,
    on_create: Optional[Callable[..., None]] = None,
    send: Optional[Callable[..., bool]] = None,
) -> int:
    """Offer one cycle of load at every node; returns packets created.

    The single injection path shared by the warmup/measure loop and the
    drain loop (and by future injectors): for each node, ask the injection
    process whether it fires, then draw a destination and enqueue the
    packet.  The call order against ``rng`` -- ``fires`` first, destination
    second, and no destination drawn once ``budget`` is exhausted -- is
    load-bearing: it pins the packet stream for a given seed, which the
    golden-run tests assert.

    ``on_create`` (if given) sees each packet after construction and
    before it is enqueued, so it may mark it measured.  ``send``
    replaces ``network.enqueue`` as the delivery path (the NI
    retransmission layer plugs in here under a fault schedule).
    """
    created = 0
    enqueue = send if send is not None else network.enqueue
    for node in range(network.topology.num_nodes):
        if not injector.fires(node, rng):
            continue
        if budget is not None and created >= budget:
            break
        packet = network.make_packet(node, pattern.destination(node, rng))
        if on_create is not None:
            on_create(packet)
        enqueue(packet)
        created += 1
    return created


def run_synthetic(
    network: Network,
    pattern: TrafficPattern,
    rate: float,
    warmup_packets: int = 200,
    measure_packets: int = 2000,
    seed: int = 1,
    injector=None,
    drain_cycle_cap: int = 400_000,
    observer=None,
    profiler: Optional[RunProfiler] = None,
    progress: Optional[Callable[[Progress], None]] = None,
    progress_every: int = 2000,
    faults=None,
    watchdog="auto",
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    resume_from=None,
) -> SyntheticRunResult:
    """Drive ``network`` with an open-loop synthetic load.

    Args:
        network: a freshly built (or reset) network.
        pattern: spatial traffic pattern choosing destinations.
        rate: offered load in packets/node/cycle.
        warmup_packets: packets injected before measurement starts.
        measure_packets: packets whose latency is recorded.
        seed: RNG seed (destinations and injection coin flips).
        injector: optional injection process with a
            ``fires(node, rng) -> bool`` method; defaults to Bernoulli at
            ``rate``.
        drain_cycle_cap: safety bound on post-measurement drain cycles.
        observer: optional :class:`repro.obs.hooks.Observer` attached to
            the network for the duration of the run (left attached after).
        profiler: optional :class:`repro.obs.profiler.RunProfiler`;
            attaches phase timing to the step loop and records the
            warmup/measure/drain wall-clock split.
        progress: optional callback receiving a
            :class:`~repro.obs.profiler.Progress` heartbeat every
            ``progress_every`` cycles.
        progress_every: heartbeat period in simulated cycles.
        faults: optional :class:`repro.faults.schedule.FaultSchedule`.
            When given, the run wires up the whole resilience stack:
            fault injector, fault-aware rerouting, and the NI
            end-to-end retransmission layer (all traffic then flows
            through the NI, and measured packets that exhaust their
            retries are *explicitly* counted lost, never dropped).
        watchdog: ``"auto"`` (default) attaches a deadlock/livelock
            :class:`repro.faults.watchdog.Watchdog` when a fault
            schedule is active or ``REPRO_CHECK=1`` is set in the
            environment (which also enables the invariant checks); pass
            a :class:`~repro.faults.watchdog.Watchdog` to force one, or
            ``None`` to disable.
        checkpoint_every: take a full simulation checkpoint (see
            :mod:`repro.noc.snapshot`) every N simulated cycles;
            requires ``checkpoint_path``.  Checkpointing never perturbs
            the run -- a checkpointed run is bit-identical to an
            uncheckpointed one (pinned by ``tests/test_snapshot.py``).
        checkpoint_path: where the (single, atomically overwritten)
            checkpoint file lives.
        resume_from: a :class:`~repro.noc.snapshot.SimSnapshot` or a
            path to one.  The restored network/RNG/injector/NI state
            *replaces* the corresponding arguments and the run continues
            from the captured cycle, producing a result bit-identical to
            an uninterrupted run.  The snapshot must have been taken by
            this runner with the same rate/seed/measurement knobs.

    Checkpointing and observers/profilers are mutually exclusive (a
    snapshot cannot carry live file handles).

    Returns a :class:`SyntheticRunResult`; ``saturated`` is set when the
    drain phase hit its cycle cap, meaning the offered load exceeded the
    network's capacity (latency numbers are then unbounded-queue artefacts
    and only throughput is meaningful).  In that case
    ``unfinished_measured_packets`` counts the measured packets whose
    records are missing, rather than silently truncating the sample.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
    if (checkpoint_every is not None or resume_from is not None) and (
        observer is not None or profiler is not None
    ):
        raise ValueError(
            "checkpointing does not support observers or profilers "
            "(snapshots cannot carry live file handles)"
        )
    rng = random.Random(seed)
    injector = injector or BernoulliInjector(rate)
    created = 0
    target = warmup_packets + measure_packets
    started_at = time.perf_counter()

    runner_state = None
    if resume_from is not None:
        snapshot = (
            resume_from
            if isinstance(resume_from, SimSnapshot)
            else load_snapshot(resume_from)
        )
        runner_state = snapshot.extra.get("runner")
        if (
            not isinstance(runner_state, dict)
            or runner_state.get("format") != CHECKPOINT_FORMAT
        ):
            raise SnapshotError(
                "snapshot was not taken by run_synthetic (or by an "
                "incompatible checkpoint format)"
            )
        spec = {
            "rate": rate,
            "seed": seed,
            "warmup_packets": warmup_packets,
            "measure_packets": measure_packets,
        }
        if runner_state.get("spec") != spec:
            raise SnapshotError(
                f"snapshot spec {runner_state.get('spec')} does not match "
                f"this run's {spec}; refusing to splice different runs"
            )
        network = snapshot.network
        snapshot.restore_packet_ids()
        if snapshot.rng_state is not None:
            rng.setstate(snapshot.rng_state)
        if snapshot.injector is not None:
            injector = snapshot.injector
        created = runner_state["created"]

    if observer is not None:
        network.attach_observer(observer)

    ni = None
    retransmit_timeout = None
    if runner_state is not None:
        # The NI (and the whole fault stack it belongs to) was pickled in
        # the same payload as the network, so its references -- including
        # ``network.on_delivery`` pointing back at it -- are already wired.
        ni = runner_state.get("ni")
        retransmit_timeout = runner_state.get("retransmit_timeout")
    elif faults is not None:
        from repro.faults.injector import FaultInjector
        from repro.faults.retransmit import (
            RetransmissionManager,
            default_timeout,
        )
        from repro.faults.routing import FaultAwareRouting

        fault_injector = FaultInjector(faults, network.topology)
        fault_routing = FaultAwareRouting(network.routing, fault_injector)
        fault_injector.set_routing(fault_routing)
        network.routing = fault_routing
        network.attach_faults(fault_injector)
        retransmit_timeout = faults.retransmit_timeout or default_timeout(
            network
        )
        ni = RetransmissionManager(
            network,
            retransmit_timeout,
            max_retries=faults.max_retries,
            backoff_factor=faults.backoff_factor,
        )
        network.on_delivery = ni.on_delivery
        network.on_loss = ni.on_loss

    repro_check = os.environ.get("REPRO_CHECK") == "1"
    if runner_state is not None:
        # A resumed run keeps the watchdog that was pickled attached.
        watchdog = network.watchdog
    elif watchdog == "auto":
        watchdog = None
        if faults is not None or repro_check:
            from repro.faults.watchdog import Watchdog

            # The stall window must outlast a full NI retransmission
            # timeout, or a legitimately wedged-then-recovered packet
            # would be misdiagnosed as deadlock.
            stall = 2_000
            if retransmit_timeout is not None:
                stall = max(stall, 2 * retransmit_timeout)
            watchdog = Watchdog(
                stall_window=stall, check_invariants=repro_check
            )
    if watchdog is not None:
        network.attach_watchdog(watchdog)

    if profiler is not None:
        network.profiler = profiler
        profiler.start()
        profiler.enter_run_phase("warmup")

    def _heartbeat(phase: str, done: int, phase_target: int) -> None:
        progress(
            Progress(
                phase=phase,
                cycle=network.cycle,
                done=done,
                target=phase_target,
                elapsed_s=time.perf_counter() - started_at,
            )
        )

    def _mark_measured(packet) -> None:
        # ``created`` is the packet's creation index: the first
        # ``warmup_packets`` packets warm the network, the rest are
        # measured (the callback runs before the count is bumped).
        nonlocal created
        if created >= warmup_packets:
            packet.measured = True
            if not network.measuring:
                network.begin_measurement()
                if profiler is not None:
                    profiler.enter_run_phase("measure")
        created += 1

    send = ni.send if ni is not None else None

    def _accounted() -> int:
        """Measured packets finished: recorded or explicitly lost."""
        lost = ni.lost_measured if ni is not None else 0
        return len(network.stats.records) + lost

    next_checkpoint = None
    if checkpoint_every is not None:
        if runner_state is not None:
            next_checkpoint = runner_state["next_checkpoint"]
        else:
            next_checkpoint = network.cycle + checkpoint_every

    def _save_checkpoint(phase: str, **phase_state) -> None:
        state = {
            "format": CHECKPOINT_FORMAT,
            "spec": {
                "rate": rate,
                "seed": seed,
                "warmup_packets": warmup_packets,
                "measure_packets": measure_packets,
            },
            "phase": phase,
            "created": created,
            "next_checkpoint": next_checkpoint,
            "ni": ni,
            "retransmit_timeout": retransmit_timeout,
        }
        state.update(phase_state)
        save_snapshot(
            capture(network, rng=rng, injector=injector,
                    extra={"runner": state}),
            checkpoint_path,
        )
        if os.environ.get("REPRO_CHAOS_PLAN"):
            from repro.chaos.sites import chaos_site

            chaos_site("runner.checkpoint")

    resumed_in_drain = (
        runner_state is not None and runner_state["phase"] == "drain"
    )
    if runner_state is None:
        network.reset_stats()
    while created < target:
        if next_checkpoint is not None and network.cycle >= next_checkpoint:
            next_checkpoint = network.cycle + checkpoint_every
            _save_checkpoint("load")
        if ni is not None:
            ni.tick(network.cycle)
        _offer_load(
            network,
            pattern,
            injector,
            rng,
            budget=target - created,
            on_create=_mark_measured,
            send=send,
        )
        network.step()
        if progress is not None and network.cycle % progress_every == 0:
            phase = "measure" if network.measuring else "warmup"
            _heartbeat(phase, created, target)

    # Measurement window closes once the last measured packet is created.
    # (Unless this run resumed from a drain-phase checkpoint, in which
    # case the window already closed before the snapshot was taken --
    # closing it again would recompute the activity deltas over drain
    # cycles they must not cover.)
    if not resumed_in_drain:
        network.end_measurement()

    # Drain: keep offering load so measured packets experience steady-state
    # contention on their way out.
    if profiler is not None:
        profiler.enter_run_phase("drain")
    drain_deadline = network.cycle + drain_cycle_cap
    saturated = False
    if resumed_in_drain:
        drain_deadline = runner_state["drain_deadline"]
    while _accounted() < measure_packets:
        if network.cycle >= drain_deadline:
            saturated = True
            break
        if next_checkpoint is not None and network.cycle >= next_checkpoint:
            next_checkpoint = network.cycle + checkpoint_every
            _save_checkpoint("drain", drain_deadline=drain_deadline)
        if ni is not None:
            ni.tick(network.cycle)
        _offer_load(network, pattern, injector, rng, send=send)
        network.step()
        if progress is not None and network.cycle % progress_every == 0:
            _heartbeat("drain", _accounted(), measure_packets)

    stats = network.stats
    lost_measured = ni.lost_measured if ni is not None else 0
    unfinished = 0
    if saturated:
        # The drain gave up with measured packets still inside the network
        # (or its source queues); report how many records are missing
        # instead of silently truncating the latency sample.
        unfinished = stats.packets_offered - len(stats.records) - lost_measured
        stats.saturated = True
        if network.obs is not None:
            network.obs.on_drain_truncated(unfinished, network.cycle)
    else:
        # Satellite accounting guarantee: every measured packet the
        # network accepted must now be a latency record or an explicit
        # loss -- anything else is silent truncation, which used to
        # corrupt the recorded sample without a trace.
        outstanding = ni.outstanding_measured() if ni is not None else 0
        missing = stats.packets_offered - len(stats.records) - lost_measured
        if missing != 0 or outstanding != 0:
            raise DrainAccountingError(
                f"{stats.packets_offered} measured packets offered but "
                f"{len(stats.records)} recorded + {lost_measured} lost "
                f"({outstanding} still tracked by the NI) after a clean "
                "drain"
            )

    if profiler is not None:
        profiler.stop()

    resilience: Dict[str, int] = {}
    if ni is not None:
        resilience = ni.summary()
        resilience["fault_events"] = len(network.faults.events)
        resilience["retransmit_timeout"] = retransmit_timeout

    return SyntheticRunResult(
        stats=stats,
        offered_rate=rate,
        warmup_packets=warmup_packets,
        measured_packets=len(stats.records),
        total_cycles=network.cycle,
        saturated=saturated,
        unfinished_measured_packets=unfinished,
        lost_measured_packets=lost_measured,
        resilience=resilience,
    )
