"""Open-loop synthetic-traffic experiment driver.

Mirrors the paper's methodology (Section 4): warm the network up with
unmeasured packets, then measure a window of packets, then keep the offered
load flowing while the measured packets drain.  Latency statistics cover
exactly the measured packets; throughput (accepted traffic) covers every
delivery inside the measurement window.

The paper warms up with 1,000 packets and measures 100,000; a pure-Python
cycle simulator makes that expensive, so the defaults here are smaller and
every experiment harness exposes the knobs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.noc.network import Network
from repro.noc.stats import NetworkStats
from repro.traffic.patterns import TrafficPattern
from repro.traffic.selfsimilar import BernoulliInjector


@dataclass
class SyntheticRunResult:
    """Outcome of one synthetic-traffic run."""

    stats: NetworkStats
    offered_rate: float
    warmup_packets: int
    measured_packets: int
    total_cycles: int
    saturated: bool

    @property
    def avg_latency_cycles(self) -> float:
        return self.stats.avg_latency_cycles

    def avg_latency_ns(self, frequency_ghz: float) -> float:
        return self.stats.avg_latency_ns(frequency_ghz)

    @property
    def throughput_packets_per_node_cycle(self) -> float:
        return self.stats.accepted_packets_per_node_per_cycle


def run_synthetic(
    network: Network,
    pattern: TrafficPattern,
    rate: float,
    warmup_packets: int = 200,
    measure_packets: int = 2000,
    seed: int = 1,
    injector=None,
    drain_cycle_cap: int = 400_000,
) -> SyntheticRunResult:
    """Drive ``network`` with an open-loop synthetic load.

    Args:
        network: a freshly built (or reset) network.
        pattern: spatial traffic pattern choosing destinations.
        rate: offered load in packets/node/cycle.
        warmup_packets: packets injected before measurement starts.
        measure_packets: packets whose latency is recorded.
        seed: RNG seed (destinations and injection coin flips).
        injector: optional injection process with a
            ``fires(node, rng) -> bool`` method; defaults to Bernoulli at
            ``rate``.
        drain_cycle_cap: safety bound on post-measurement drain cycles.

    Returns a :class:`SyntheticRunResult`; ``saturated`` is set when the
    drain phase hit its cycle cap, meaning the offered load exceeded the
    network's capacity (latency numbers are then unbounded-queue artefacts
    and only throughput is meaningful).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    injector = injector or BernoulliInjector(rate)
    created = 0
    target = warmup_packets + measure_packets

    network.reset_stats()
    while created < target:
        for node in range(network.topology.num_nodes):
            if not injector.fires(node, rng):
                continue
            if created >= target:
                break
            dst = pattern.destination(node, rng)
            packet = network.make_packet(node, dst)
            if created >= warmup_packets:
                packet.measured = True
                if not network.measuring:
                    network.begin_measurement()
            network.enqueue(packet)
            created += 1
        network.step()

    # Measurement window closes once the last measured packet is created.
    network.end_measurement()

    # Drain: keep offering load so measured packets experience steady-state
    # contention on their way out.
    drain_deadline = network.cycle + drain_cycle_cap
    saturated = False
    while len(network.stats.records) < measure_packets:
        if network.cycle >= drain_deadline:
            saturated = True
            break
        for node in range(network.topology.num_nodes):
            if injector.fires(node, rng):
                network.enqueue(
                    network.make_packet(node, pattern.destination(node, rng))
                )
        network.step()

    return SyntheticRunResult(
        stats=network.stats,
        offered_rate=rate,
        warmup_packets=warmup_packets,
        measured_packets=len(network.stats.records),
        total_cycles=network.cycle,
        saturated=saturated,
    )
