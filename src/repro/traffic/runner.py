"""Open-loop synthetic-traffic experiment driver.

Mirrors the paper's methodology (Section 4): warm the network up with
unmeasured packets, then measure a window of packets, then keep the offered
load flowing while the measured packets drain.  Latency statistics cover
exactly the measured packets; throughput (accepted traffic) covers every
delivery inside the measurement window.

The paper warms up with 1,000 packets and measures 100,000; a pure-Python
cycle simulator makes that expensive, so the defaults here are smaller and
every experiment harness exposes the knobs.

Observability (see :mod:`repro.obs`): pass ``observer=`` to attach event
hooks for the duration of the run, ``profiler=`` to collect wall-clock
phase timings and cycles/second, and ``progress=`` to receive periodic
:class:`~repro.obs.profiler.Progress` heartbeats with ETA estimates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.network import Network
from repro.noc.stats import NetworkStats
from repro.obs.profiler import Progress, RunProfiler
from repro.traffic.patterns import TrafficPattern
from repro.traffic.selfsimilar import BernoulliInjector


@dataclass
class SyntheticRunResult:
    """Outcome of one synthetic-traffic run."""

    stats: NetworkStats
    offered_rate: float
    warmup_packets: int
    measured_packets: int
    total_cycles: int
    saturated: bool
    #: measured packets still in flight when the drain hit its cycle cap
    #: (0 unless ``saturated``); their latency records are missing from
    #: ``stats.records``, so the recorded population is survivorship-biased.
    unfinished_measured_packets: int = 0

    @property
    def avg_latency_cycles(self) -> float:
        return self.stats.avg_latency_cycles

    def avg_latency_ns(self, frequency_ghz: float) -> float:
        return self.stats.avg_latency_ns(frequency_ghz)

    @property
    def throughput_packets_per_node_cycle(self) -> float:
        return self.stats.accepted_packets_per_node_per_cycle


def _offer_load(
    network: Network,
    pattern: TrafficPattern,
    injector,
    rng: random.Random,
    budget: Optional[int] = None,
    on_create: Optional[Callable[..., None]] = None,
) -> int:
    """Offer one cycle of load at every node; returns packets created.

    The single injection path shared by the warmup/measure loop and the
    drain loop (and by future injectors): for each node, ask the injection
    process whether it fires, then draw a destination and enqueue the
    packet.  The call order against ``rng`` -- ``fires`` first, destination
    second, and no destination drawn once ``budget`` is exhausted -- is
    load-bearing: it pins the packet stream for a given seed, which the
    golden-run tests assert.

    ``on_create`` (if given) sees each packet after construction and
    before it is enqueued, so it may mark it measured.
    """
    created = 0
    for node in range(network.topology.num_nodes):
        if not injector.fires(node, rng):
            continue
        if budget is not None and created >= budget:
            break
        packet = network.make_packet(node, pattern.destination(node, rng))
        if on_create is not None:
            on_create(packet)
        network.enqueue(packet)
        created += 1
    return created


def run_synthetic(
    network: Network,
    pattern: TrafficPattern,
    rate: float,
    warmup_packets: int = 200,
    measure_packets: int = 2000,
    seed: int = 1,
    injector=None,
    drain_cycle_cap: int = 400_000,
    observer=None,
    profiler: Optional[RunProfiler] = None,
    progress: Optional[Callable[[Progress], None]] = None,
    progress_every: int = 2000,
) -> SyntheticRunResult:
    """Drive ``network`` with an open-loop synthetic load.

    Args:
        network: a freshly built (or reset) network.
        pattern: spatial traffic pattern choosing destinations.
        rate: offered load in packets/node/cycle.
        warmup_packets: packets injected before measurement starts.
        measure_packets: packets whose latency is recorded.
        seed: RNG seed (destinations and injection coin flips).
        injector: optional injection process with a
            ``fires(node, rng) -> bool`` method; defaults to Bernoulli at
            ``rate``.
        drain_cycle_cap: safety bound on post-measurement drain cycles.
        observer: optional :class:`repro.obs.hooks.Observer` attached to
            the network for the duration of the run (left attached after).
        profiler: optional :class:`repro.obs.profiler.RunProfiler`;
            attaches phase timing to the step loop and records the
            warmup/measure/drain wall-clock split.
        progress: optional callback receiving a
            :class:`~repro.obs.profiler.Progress` heartbeat every
            ``progress_every`` cycles.
        progress_every: heartbeat period in simulated cycles.

    Returns a :class:`SyntheticRunResult`; ``saturated`` is set when the
    drain phase hit its cycle cap, meaning the offered load exceeded the
    network's capacity (latency numbers are then unbounded-queue artefacts
    and only throughput is meaningful).  In that case
    ``unfinished_measured_packets`` counts the measured packets whose
    records are missing, rather than silently truncating the sample.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = random.Random(seed)
    injector = injector or BernoulliInjector(rate)
    created = 0
    target = warmup_packets + measure_packets
    started_at = time.perf_counter()

    if observer is not None:
        network.attach_observer(observer)
    if profiler is not None:
        network.profiler = profiler
        profiler.start()
        profiler.enter_run_phase("warmup")

    def _heartbeat(phase: str, done: int, phase_target: int) -> None:
        progress(
            Progress(
                phase=phase,
                cycle=network.cycle,
                done=done,
                target=phase_target,
                elapsed_s=time.perf_counter() - started_at,
            )
        )

    def _mark_measured(packet) -> None:
        # ``created`` is the packet's creation index: the first
        # ``warmup_packets`` packets warm the network, the rest are
        # measured (the callback runs before the count is bumped).
        nonlocal created
        if created >= warmup_packets:
            packet.measured = True
            if not network.measuring:
                network.begin_measurement()
                if profiler is not None:
                    profiler.enter_run_phase("measure")
        created += 1

    network.reset_stats()
    while created < target:
        _offer_load(
            network,
            pattern,
            injector,
            rng,
            budget=target - created,
            on_create=_mark_measured,
        )
        network.step()
        if progress is not None and network.cycle % progress_every == 0:
            phase = "measure" if network.measuring else "warmup"
            _heartbeat(phase, created, target)

    # Measurement window closes once the last measured packet is created.
    network.end_measurement()

    # Drain: keep offering load so measured packets experience steady-state
    # contention on their way out.
    if profiler is not None:
        profiler.enter_run_phase("drain")
    drain_deadline = network.cycle + drain_cycle_cap
    saturated = False
    while len(network.stats.records) < measure_packets:
        if network.cycle >= drain_deadline:
            saturated = True
            break
        _offer_load(network, pattern, injector, rng)
        network.step()
        if progress is not None and network.cycle % progress_every == 0:
            _heartbeat("drain", len(network.stats.records), measure_packets)

    stats = network.stats
    unfinished = 0
    if saturated:
        # The drain gave up with measured packets still inside the network
        # (or its source queues); report how many records are missing
        # instead of silently truncating the latency sample.
        unfinished = stats.packets_offered - len(stats.records)
        stats.saturated = True
        if network.obs is not None:
            network.obs.on_drain_truncated(unfinished, network.cycle)

    if profiler is not None:
        profiler.stop()

    return SyntheticRunResult(
        stats=stats,
        offered_rate=rate,
        warmup_packets=warmup_packets,
        measured_packets=len(stats.records),
        total_cycles=network.cycle,
        saturated=saturated,
        unfinished_measured_packets=unfinished,
    )
