"""HeteroNoC: a reproduction of "A Case for Heterogeneous On-Chip
Interconnects for CMPs" (Mishra, Vijaykrishnan & Das, ISCA 2011).

Subpackages:

* :mod:`repro.noc` -- cycle-accurate NoC simulator (routers, topologies,
  routing, flow control, statistics).
* :mod:`repro.traffic` -- synthetic patterns, self-similar sources, trace
  format and application workload profiles.
* :mod:`repro.core` -- the HeteroNoC contribution: layouts, resource
  redistribution math, calibrated power/area/frequency models, design
  space exploration, flit-merging analysis.
* :mod:`repro.cmp` -- 64-tile CMP model (cores, caches, MESI directory,
  memory controllers) co-simulated with the network.
* :mod:`repro.experiments` -- one harness per paper table/figure.

Quick start::

    from repro.core import layout_by_name, build_network
    from repro.traffic import UniformRandom, run_synthetic

    layout = layout_by_name("diagonal+BL")
    network = build_network(layout)
    result = run_synthetic(
        network, UniformRandom(network.topology.num_nodes), rate=0.02
    )
    print(result.avg_latency_ns(layout.frequency_ghz))
"""

__version__ = "1.0.0"

from repro import core, noc, traffic

__all__ = ["core", "noc", "traffic", "__version__"]
