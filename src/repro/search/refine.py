"""Closed-loop refinement: cycle-simulate the search's survivors.

The analytic evaluator ranks millions of placements per minute but it is
still a model; the paper's own methodology (footnote 4) pre-filtered
analytically and settled the leaders by cycle simulation.  This module
is that second stage: each surviving placement becomes one
:class:`repro.exec.SweepPoint`, so the confirmation runs inherit the
sweep engine's process-pool parallelism (``REPRO_JOBS``), disk cache
and bit-identical determinism -- a repeated refinement with the same
seed performs zero new simulations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.point import SweepPoint


def placement_points(
    placements: Sequence[Iterable[int]],
    mesh_size: int,
    rate: float = 0.08,
    seed: int = 5,
    warmup_packets: Optional[int] = None,
    measure_packets: int = 400,
    redistribute_links: bool = True,
    faults=None,
    kernel: Optional[str] = None,
) -> List[SweepPoint]:
    """One :class:`SweepPoint` per candidate placement.

    ``faults`` (optional) is a :class:`repro.faults.schedule.FaultSchedule`
    applied identically to every candidate -- the resilience-aware
    variant of the shoot-out -- or a sequence of schedules, one per
    placement (e.g. each candidate's own worst-case kill set from
    :meth:`repro.search.objectives.PlacementEvaluator.kill_schedule`).
    ``kernel`` (optional) forces a cycle kernel for every candidate --
    ``"soa"`` (or ``"c"``, the compiled kernel) speeds fault-free
    refinement batches up without changing a single measured bit (all
    kernels are differentially verified).
    """
    placements = [tuple(sorted(set(p))) for p in placements]
    if warmup_packets is None:
        warmup_packets = max(50, measure_packets // 8)
    if faults is None or not isinstance(faults, (list, tuple)):
        schedules = [faults] * len(placements)
    else:
        if len(faults) != len(placements):
            raise ValueError(
                f"{len(faults)} fault schedules for {len(placements)} placements"
            )
        schedules = list(faults)
    return [
        SweepPoint(
            layout=None,
            big_positions=positions,
            redistribute_links=redistribute_links,
            mesh_size=mesh_size,
            pattern="uniform_random",
            rate=rate,
            seed=seed,
            warmup_packets=warmup_packets,
            measure_packets=measure_packets,
            faults=schedule,
            kernel=kernel,
        )
        for positions, schedule in zip(placements, schedules)
    ]


def refine_placements(
    placements: Sequence[Iterable[int]],
    mesh_size: int,
    rate: float = 0.08,
    seed: int = 5,
    measure_packets: int = 400,
    warmup_packets: Optional[int] = None,
    redistribute_links: bool = True,
    faults=None,
    kernel: Optional[str] = None,
    evaluator=None,
    **sweep_kwargs,
) -> List[Dict[str, object]]:
    """Cycle-simulate candidate placements; rank by measured latency.

    Returns one record per placement, sorted by average latency
    (ascending -- best first).  Each record carries the simulated
    metrics alongside the analytic score so callers can check that the
    model ordering survives contact with the simulator.  ``evaluator``
    (a :class:`~repro.search.objectives.PlacementEvaluator`) supplies
    the analytic score; omitted, a default uniform-random evaluator of
    the right mesh size is built.  Extra keyword arguments reach
    :func:`repro.exec.run_sweep` (``jobs``, ``cache``, ...).
    """
    from repro.exec.engine import run_sweep
    from repro.search.objectives import PlacementEvaluator

    placements = [tuple(sorted(set(p))) for p in placements]
    if evaluator is None:
        evaluator = PlacementEvaluator(mesh_size)
    points = placement_points(
        placements,
        mesh_size,
        rate=rate,
        seed=seed,
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        redistribute_links=redistribute_links,
        faults=faults,
        kernel=kernel,
    )
    results = run_sweep(points, **sweep_kwargs)
    records: List[Dict[str, object]] = []
    for positions, result in zip(placements, results):
        records.append(
            {
                "big_positions": frozenset(positions),
                "latency_cycles": result.latency_cycles,
                "latency_ns": result.latency_ns,
                "throughput": result.throughput,
                "saturated": result.saturated,
                "from_cache": result.from_cache,
                "analytic_score": evaluator.evaluate(positions).analytic,
                "scalar_score": evaluator.evaluate(positions).scalar,
            }
        )
    records.sort(key=_latency_rank)
    return records


def _latency_rank(record: Dict[str, object]) -> Tuple[float, Tuple[int, ...]]:
    latency = record["latency_cycles"]
    # NaN (a captured failure) sorts last; ties break on the placement.
    key = latency if latency == latency else float("inf")
    return (key, tuple(sorted(record["big_positions"])))


def submit_refinement(
    server,
    placements: Sequence[Iterable[int]],
    mesh_size: int,
    rate: float = 0.08,
    seed: int = 5,
    measure_packets: int = 400,
    warmup_packets: Optional[int] = None,
    redistribute_links: bool = True,
    faults=None,
    kernel: Optional[str] = None,
    priority: int = 0,
    tag: str = "refine",
    client: Optional[str] = None,
) -> Dict[str, object]:
    """Enqueue a refinement shoot-out on a sweep job server.

    ``server`` is a :class:`repro.serve.ServeClient` or a URL string.
    The survivors of an SA/GA search become one content-addressed job:
    a second submission of the same candidates (same seed and scale)
    dedups onto the first -- the queue-side twin of the engine cache.
    Returns the server's submission record (``job_id``, ``deduped``,
    ``state``).  Collect the ranked records later with
    :func:`collect_refinement`.
    """
    from repro.serve.client import ServeClient

    if isinstance(server, str):
        server = ServeClient(server)
    points = placement_points(
        placements,
        mesh_size,
        rate=rate,
        seed=seed,
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        redistribute_links=redistribute_links,
        faults=faults,
        kernel=kernel,
    )
    return server.submit(points, priority=priority, tag=tag, client=client)


def collect_refinement(
    server,
    job_id: str,
    placements: Sequence[Iterable[int]],
    mesh_size: Optional[int] = None,
    evaluator=None,
    timeout: float = 3600.0,
) -> List[Dict[str, object]]:
    """Wait for a :func:`submit_refinement` job; return ranked records.

    Output matches :func:`refine_placements` row for row (the server
    executes each point with the same serial engine), so the two paths
    are interchangeable in analysis code.  Pass ``mesh_size`` (or a
    ready ``evaluator``) to score the analytic columns.
    """
    from repro.search.objectives import PlacementEvaluator
    from repro.serve.client import ServeClient

    if isinstance(server, str):
        server = ServeClient(server)
    placements = [tuple(sorted(set(p))) for p in placements]
    if evaluator is None:
        if mesh_size is None:
            raise ValueError("collect_refinement needs mesh_size or evaluator")
        evaluator = PlacementEvaluator(mesh_size)
    server.wait(job_id, timeout=timeout)
    results = server.results(job_id)
    records: List[Dict[str, object]] = []
    for positions, result in zip(placements, results):
        records.append(
            {
                "big_positions": frozenset(positions),
                "latency_cycles": result.latency_cycles,
                "latency_ns": result.latency_ns,
                "throughput": result.throughput,
                "saturated": result.saturated,
                "from_cache": result.from_cache,
                "analytic_score": evaluator.evaluate(positions).analytic,
                "scalar_score": evaluator.evaluate(positions).scalar,
            }
        )
    records.sort(key=_latency_rank)
    return records
