"""Scalable placement search and design-space optimization.

The paper exhaustively searched every big-router placement on a 4x4 mesh
(footnote 4: 1820 / 8008 / 12870 configurations) and extrapolated the
winning *shapes* to 8x8.  On the 8x8 mesh itself the same search is
C(64, 16) ~= 4.9e14 placements -- far beyond enumeration -- so this
package searches it directly with metaheuristics:

* :mod:`repro.search.canonical` -- the mesh's 8 dihedral symmetries and
  placement canonicalization, so a search never pays twice for two
  reflections of the same shape;
* :mod:`repro.search.objectives` -- a pluggable multi-objective
  evaluator: analytic load coverage (the footnote-4 pre-filter), a
  queueing-style per-router contention estimate, per-source fairness,
  the Table 1-calibrated power headroom and an optional resilience term
  built on :mod:`repro.faults` kill schedules;
* :mod:`repro.search.optimize` -- seeded simulated annealing, a small
  evolutionary loop, exhaustive search for enumerable spaces, and the
  Pareto-frontier helper;
* :mod:`repro.search.refine` -- the closed loop back to the cycle
  simulator: survivors become :class:`repro.exec.SweepPoint`s, so the
  confirmation runs parallelize and cache like every other experiment.

``python -m repro.experiments.placement_search`` drives the full
pipeline and reproduces the paper's diagonal-family winners on 8x8.
"""

from repro.search.canonical import (
    canonical_placement,
    dihedral_transforms,
    is_diagonal_family,
    placement_orbit,
)
from repro.search.objectives import (
    ObjectiveWeights,
    PlacementEvaluator,
    PlacementObjectives,
)
from repro.search.optimize import (
    SearchResult,
    evolutionary_search,
    exhaustive_search,
    pareto_frontier,
    simulated_annealing,
)
from repro.search.refine import refine_placements

__all__ = [
    "ObjectiveWeights",
    "PlacementEvaluator",
    "PlacementObjectives",
    "SearchResult",
    "canonical_placement",
    "dihedral_transforms",
    "evolutionary_search",
    "exhaustive_search",
    "is_diagonal_family",
    "pareto_frontier",
    "placement_orbit",
    "refine_placements",
    "simulated_annealing",
]
