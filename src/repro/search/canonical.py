"""Mesh symmetries and placement canonicalization.

An N x N mesh has the dihedral symmetry group D4: four rotations and
four reflections.  X-Y routing is not itself symmetric under all eight
(it prefers the X dimension first), but the *traffic totals* the
analytic objectives are built from are -- every transform maps the set
of source-destination pairs onto itself and maps each router's traversal
count onto the image router's count -- so two placements related by a
symmetry always score identically.  Search algorithms therefore
canonicalize every candidate: of the (up to) eight equivalent
placements, the lexicographically smallest sorted position tuple is the
representative, and evaluation caches / top-k archives key on it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: For each entry of :func:`dihedral_transforms`, whether the transform
#: exchanges the row and column axes.  X-Y routing is axis-sensitive:
#: under an axis-swapping transform the image of an X-Y path is the
#: corresponding Y-X path, which visits the same routers as the X-Y path
#: of the *reversed* flow -- so traffic models must weight (s, d) and
#: (d, s) symmetrically for these four to preserve scores.
AXIS_SWAPPING = (False, True, False, True, False, False, True, True)


@lru_cache(maxsize=None)
def dihedral_transforms(n: int) -> Tuple[Tuple[int, ...], ...]:
    """The 8 symmetry maps of an ``n x n`` mesh as router-index tables.

    ``dihedral_transforms(n)[t][rid]`` is where router ``rid`` lands
    under transform ``t``.  Transform 0 is the identity; the rest are
    the three non-trivial rotations and the four reflections
    (horizontal, vertical, main diagonal, anti-diagonal).
    """
    if n < 1:
        raise ValueError(f"mesh size must be >= 1, got {n}")

    def table(move) -> Tuple[int, ...]:
        out = []
        for rid in range(n * n):
            r, c = divmod(rid, n)
            nr, nc = move(r, c)
            out.append(nr * n + nc)
        return tuple(out)

    return (
        table(lambda r, c: (r, c)),                  # identity
        table(lambda r, c: (c, n - 1 - r)),          # rotate 90
        table(lambda r, c: (n - 1 - r, n - 1 - c)),  # rotate 180
        table(lambda r, c: (n - 1 - c, r)),          # rotate 270
        table(lambda r, c: (r, n - 1 - c)),          # flip horizontal
        table(lambda r, c: (n - 1 - r, c)),          # flip vertical
        table(lambda r, c: (c, r)),                  # transpose
        table(lambda r, c: (n - 1 - c, n - 1 - r)),  # anti-transpose
    )


def apply_transform(
    positions: Iterable[int], mapping: Tuple[int, ...]
) -> FrozenSet[int]:
    """Image of a placement under one symmetry map."""
    return frozenset(mapping[p] for p in positions)


def placement_orbit(positions: Iterable[int], n: int) -> Set[FrozenSet[int]]:
    """All distinct placements symmetric to ``positions`` (1 to 8 of them)."""
    base = frozenset(positions)
    return {apply_transform(base, m) for m in dihedral_transforms(n)}


def canonical_placement(
    positions: Iterable[int],
    n: int,
    transforms: Optional[Sequence[Tuple[int, ...]]] = None,
) -> Tuple[int, ...]:
    """The canonical representative of a placement's symmetry orbit.

    Deterministic: the lexicographically smallest sorted tuple among the
    images under ``transforms`` (default: all eight).  Two placements
    canonicalize equal iff one of the transforms maps one onto the
    other.  Pass a subgroup (e.g. a traffic model's
    ``symmetry_maps``) to canonicalize only over symmetries that
    actually preserve scores.
    """
    base = frozenset(positions)
    if transforms is None:
        transforms = dihedral_transforms(n)
    return min(tuple(sorted(apply_transform(base, m))) for m in transforms)


@lru_cache(maxsize=None)
def wrapped_diagonals(n: int) -> Tuple[FrozenSet[int], ...]:
    """The 2n full wrapped diagonals of an ``n x n`` mesh.

    Offsets 0..n-1 in the main orientation (``col = (row + k) mod n``)
    followed by offsets 0..n-1 in the anti orientation
    (``col = (k - row) mod n``).  Each contains exactly ``n`` routers;
    each orientation on its own partitions the mesh.
    """
    main = tuple(
        frozenset(r * n + (r + k) % n for r in range(n)) for k in range(n)
    )
    anti = tuple(
        frozenset(r * n + (k - r) % n for r in range(n)) for k in range(n)
    )
    return main + anti


def is_diagonal_family(positions: Iterable[int], n: int) -> bool:
    """Whether a placement is a disjoint union of full wrapped diagonals.

    This is the "diagonal family" of the paper's footnote-4 discussion:
    the Figure 3 diagonal (both main diagonals of an even mesh) is the
    union of one main- and one anti-orientation diagonal, and the other
    strong shapes the exhaustive search surfaces (diagonal stripes /
    checkerboards) are unions of parallel wrapped diagonals.  Any member
    places exactly ``num_big / n`` big routers in every row and column.
    """
    target = frozenset(positions)
    if len(target) % n:
        return False
    bands = [d for d in wrapped_diagonals(n) if d <= target]
    chosen: List[FrozenSet[int]] = []
    covered: Set[int] = set()
    # Greedy cover with disjointness; 2n candidate bands keeps this exact
    # enough in practice because overlapping bands share exactly one or
    # two routers and a valid cover must use pairwise-disjoint bands.
    return _exact_disjoint_cover(target, bands, covered, chosen)


def _exact_disjoint_cover(target, bands, covered, chosen) -> bool:
    if covered == target:
        return True
    remaining = target - covered
    anchor = min(remaining)
    for band in bands:
        if anchor in band and not (band & covered):
            chosen.append(band)
            if _exact_disjoint_cover(target, bands, covered | band, chosen):
                return True
            chosen.pop()
    return False
