"""Multi-objective placement evaluation.

The footnote-4 analytic score (load-weighted coverage of X-Y flows) is a
good pre-filter but a one-dimensional one: it rewards putting big
routers where traversal counts are highest, which on its own drifts
toward center clusters.  The evaluator here scores a placement on four
physically-motivated axes (plus caller-supplied extras), so the search
can trade them off the way the paper's cycle simulations implicitly did:

``analytic``
    The existing :mod:`repro.core.design_space` score -- load coverage
    plus flow-coverage and row/column-spread tie-breakers -- computed
    under the evaluator's traffic weighting.
``fairness``
    Worst-source covered-traffic fraction.  The paper's stated rationale
    for the diagonal ("big routers in every row and column") is exactly
    a fairness argument: no source should be far from big-router relief.
``contention``
    A queueing estimate: each router is an M/M/1-style server whose
    service rate reflects its provisioning (link flits/cycle times a
    head-of-line factor ``V/(V+1)``), loaded with the pattern's offered
    traffic at a reference utilization.  The objective is the zero-load
    delay divided by the estimated delay, in (0, 1] -- higher means the
    placement relieves the actual bottlenecks.
``balance``
    Row/column balance of the big-router counts.  This quantifies the
    paper's stated design rationale verbatim -- "a big router in each
    row and each column" -- because X-Y routing decomposes every path
    into one row and one column segment: balanced rows and columns
    equalize big-router access across all segments, while a cluster
    over-serves a few and starves the rest.
``resilience``
    Covered-traffic fraction after the ``kill_count`` most-loaded big
    routers are removed -- the analytic twin of the
    :mod:`repro.experiments.resilience` targeted-kill study.  Placements
    that concentrate all their value in a couple of routers score low;
    :meth:`PlacementEvaluator.kill_schedule` exports the same worst-case
    kill set as a :class:`repro.faults.schedule.FaultSchedule` so the
    refinement stage can cycle-simulate it.
``power_slack``
    Fractional headroom of the Section 2 power inequality under the
    Table 1-calibrated router powers; negative when the placement's
    router mix exceeds the homogeneous budget.

A scalarization (:class:`ObjectiveWeights`) combines the axes for the
hill-climbing searches; the raw vectors feed the Pareto analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.power import TABLE1_POWER_W
from repro.search.canonical import (
    AXIS_SWAPPING,
    canonical_placement,
    dihedral_transforms,
)

#: service rate of a router in flits/cycle: link flits/cycle times the
#: head-of-line relief factor V/(V+1) (more VCs approach the link limit).
#: Narrow/small: 1 flit/cycle, 2 VCs; wide/big: 2 flits/cycle, 6 VCs.
SMALL_CAPACITY = 1.0 * (2.0 / 3.0)
BIG_CAPACITY = 2.0 * (6.0 / 7.0)

_PATTERNS = ("uniform_random", "hotspot")


def default_hotspots(n: int) -> Tuple[int, ...]:
    """The four quadrant-center nodes -- the classic hotspot quartet."""
    lo, hi = n // 4, n - 1 - n // 4
    return tuple(
        sorted({r * n + c for r in (lo, hi) for c in (lo, hi)})
    )


class FlowModel:
    """Precomputed traffic tensors for one (mesh size, pattern) pair.

    Rows of ``incidence`` are flows in source-major order (every
    destination of source 0, then source 1, ...); ``weights`` are
    per-flow traffic fractions normalized per source (each source
    injects 1 unit split over its destinations), so ``offered`` -- the
    per-router arrival rate at injection rate 1 -- is the pattern-aware
    generalization of the footnote-4 traversal counts.
    """

    def __init__(
        self,
        mesh_size: int,
        pattern: str = "uniform_random",
        hotspot_factor: float = 4.0,
        hotspots: Optional[Sequence[int]] = None,
    ) -> None:
        if pattern not in _PATTERNS:
            raise ValueError(
                f"pattern must be one of {_PATTERNS}, got {pattern!r}"
            )
        if hotspot_factor < 1.0:
            raise ValueError(
                f"hotspot_factor must be >= 1, got {hotspot_factor}"
            )
        from repro.core.design_space import xy_path_routers
        from repro.noc.topology import Mesh

        self.mesh_size = mesh_size
        self.pattern = pattern
        n = mesh_size
        num = n * n
        self.num_routers = num
        mesh = Mesh(n)
        self.hotspots: Tuple[int, ...] = ()
        if pattern == "hotspot":
            self.hotspots = tuple(
                sorted(hotspots) if hotspots is not None else default_hotspots(n)
            )
            bad = [h for h in self.hotspots if not 0 <= h < num]
            if bad:
                raise ValueError(f"hotspots outside the mesh: {bad}")

        flows: List[Tuple[int, int]] = [
            (s, d) for s in range(num) for d in range(num) if s != d
        ]
        self.flows = flows
        incidence = np.zeros((len(flows), num), dtype=np.float64)
        for i, (s, d) in enumerate(flows):
            for r in xy_path_routers(mesh, s, d):
                incidence[i, r] = 1.0
        self.incidence = incidence

        raw = np.ones(len(flows), dtype=np.float64)
        if pattern == "hotspot":
            hot = set(self.hotspots)
            for i, (_s, d) in enumerate(flows):
                if d in hot:
                    raw[i] = hotspot_factor
        # Normalize per source: every source injects one unit of traffic.
        per_source = raw.reshape(num, num - 1)
        per_source = per_source / per_source.sum(axis=1, keepdims=True)
        self.source_weights = per_source
        #: per-flow traffic fractions, normalized to sum 1 network-wide.
        self.weights = per_source.reshape(-1) / num
        #: per-router arrivals when every node injects 1 packet/cycle.
        self.offered = per_source.reshape(-1) @ incidence
        #: per-router share of total weighted traversals (the analytic
        #: "load" of the footnote-4 score, pattern-aware).
        self.load = self.offered / self.offered.sum()
        #: per-destination weight totals (columns of the weight matrix),
        #: the normalizers of the destination-marginal fairness view.
        matrix = np.zeros((num, num), dtype=np.float64)
        rows, cols = zip(*flows)
        matrix[rows, cols] = self.weights
        self._weight_matrix = matrix
        self.dest_totals = matrix.sum(axis=0)
        #: the dihedral transforms that provably preserve every score of
        #: this traffic model (see :data:`repro.search.canonical.AXIS_SWAPPING`
        #: for why axis-swapping ones additionally need (s, d) <-> (d, s)
        #: weight symmetry).  Uniform random keeps all eight; a hotspot
        #: model with a D4-symmetric hotspot set keeps the four
        #: axis-preserving ones.
        self.symmetry_maps = tuple(
            mapping
            for mapping, swaps in zip(dihedral_transforms(n), AXIS_SWAPPING)
            if self._preserves_weights(mapping, swaps)
        )
        self.symmetric = len(self.symmetry_maps) == 8

    def _preserves_weights(self, mapping, swaps_axes: bool) -> bool:
        perm = np.asarray(mapping)
        image = self._weight_matrix[np.ix_(perm, perm)]
        target = self._weight_matrix.T if swaps_axes else self._weight_matrix
        return bool(np.allclose(image, target))


@dataclass
class ObjectiveWeights:
    """Scalarization weights for :meth:`PlacementEvaluator.scalar`.

    The defaults are calibrated on the 4x4 exhaustive space (where the
    ground truth is enumerable): under them the global optimum of all
    12,870 (16 choose 8) placements is the paper's exact Figure 3
    diagonal, with the wrapped-diagonal stripe family immediately
    behind -- reproducing the footnote-4 finding -- while keeping every
    term individually influential.
    """

    analytic: float = 1.0
    fairness: float = 1.0
    contention: float = 1.5
    balance: float = 0.75
    resilience: float = 0.5
    power_slack: float = 0.25
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass
class PlacementObjectives:
    """One placement's objective vector (all axes: higher is better)."""

    positions: Tuple[int, ...]
    canonical: Tuple[int, ...]
    load_coverage: float
    flow_coverage: float
    spread: float
    analytic: float
    fairness: float
    contention: float
    balance: float
    resilience: float
    power_slack: float
    scalar: float
    extras: Dict[str, float] = field(default_factory=dict)

    def vector(self, axes: Sequence[str]) -> Tuple[float, ...]:
        """The named axes as a tuple (for Pareto comparisons)."""
        return tuple(
            self.extras[a] if a in self.extras else getattr(self, a)
            for a in axes
        )


class PlacementEvaluator:
    """Scores big-router placements on an ``n x n`` mesh.

    Evaluations are cached by canonical placement over the traffic
    model's ``symmetry_maps`` -- the dihedral transforms that provably
    preserve every objective for that pattern (all eight for uniform
    random; the four axis-preserving ones for hotspot traffic, whose
    destination bias is not flow-reversal symmetric).  A search that
    proposes a reflection of something it already tried pays nothing --
    ``cache_hits`` / ``evaluations`` expose the dedup rate.

    ``extra_terms`` plugs in additional objectives: a mapping of name to
    a callable ``fn(frozenset_positions, flow_model) -> float`` whose
    value lands in ``PlacementObjectives.extras`` and participates in
    the scalarization with weight ``weights.extras[name]`` (default 0).
    """

    def __init__(
        self,
        mesh_size: int,
        pattern: str = "uniform_random",
        weights: Optional[ObjectiveWeights] = None,
        kill_count: int = 2,
        reference_utilization: float = 0.75,
        hotspot_factor: float = 4.0,
        hotspots: Optional[Sequence[int]] = None,
        extra_terms: Optional[
            Dict[str, Callable[[frozenset, FlowModel], float]]
        ] = None,
    ) -> None:
        if not 0.0 < reference_utilization < 1.0:
            raise ValueError(
                "reference_utilization must be in (0, 1), got "
                f"{reference_utilization}"
            )
        if kill_count < 0:
            raise ValueError(f"kill_count must be >= 0, got {kill_count}")
        self.mesh_size = mesh_size
        self.model = FlowModel(
            mesh_size,
            pattern,
            hotspot_factor=hotspot_factor,
            hotspots=hotspots,
        )
        self.weights = weights if weights is not None else ObjectiveWeights()
        self.kill_count = kill_count
        self.extra_terms = dict(extra_terms or {})
        #: per-node injection rate putting the hottest router at
        #: ``reference_utilization`` of *small* capacity -- i.e. the
        #: worst case never saturates, but contention has dynamic range.
        self.reference_rate = (
            reference_utilization * SMALL_CAPACITY / self.model.offered.max()
        )
        self._lam = self.reference_rate * self.model.offered
        self.evaluations = 0
        self.cache_hits = 0
        self._cache: Dict[Tuple[int, ...], PlacementObjectives] = {}

    # -- individual axes ------------------------------------------------------
    def _mask(self, big: frozenset) -> np.ndarray:
        mask = np.zeros(self.model.num_routers, dtype=np.float64)
        mask[list(big)] = 1.0
        return mask

    def _coverage(self, mask: np.ndarray) -> Tuple[float, float, np.ndarray]:
        """(load coverage, weighted flow coverage, per-flow covered 0/1)."""
        covered = (self.model.incidence @ mask > 0.0).astype(np.float64)
        return (
            float(self.model.load @ mask),
            float(self.model.weights @ covered),
            covered,
        )

    def _fairness(self, covered: np.ndarray) -> float:
        """Worst covered-traffic fraction over *both* flow marginals.

        Taking the min over sources alone is not self-dual: an
        axis-swapping mesh symmetry maps the per-source view onto the
        per-destination view (a Y-X path visits the routers of the
        reversed flow's X-Y path), so a source-only min could score two
        reflections of one placement differently.  The min over both
        marginals is exactly invariant.
        """
        num = self.model.num_routers
        per_source = (
            self.model.source_weights
            * covered.reshape(num, num - 1)
        ).sum(axis=1)
        matrix = self.model._weight_matrix
        per_dest = (
            np.einsum("sd,sd->d", matrix, self._covered_matrix(covered))
            / self.model.dest_totals
        )
        return float(min(per_source.min(), per_dest.min()))

    def _covered_matrix(self, covered: np.ndarray) -> np.ndarray:
        """The per-flow covered indicator as a dense (src, dst) matrix."""
        num = self.model.num_routers
        out = np.zeros((num, num), dtype=np.float64)
        rows, cols = zip(*self.model.flows)
        out[rows, cols] = covered
        return out

    def _contention(self, mask: np.ndarray) -> float:
        cap = np.where(mask > 0.0, BIG_CAPACITY, SMALL_CAPACITY)
        # The reference rate keeps every router under small capacity, but
        # guard anyway so custom utilizations degrade instead of dividing
        # by zero.
        headroom = np.maximum(cap - self._lam, 0.01 * cap)
        delay = self.model.incidence @ (1.0 / headroom)
        zero_load = self.model.incidence @ (1.0 / cap)
        return float(
            (self.model.weights @ zero_load) / (self.model.weights @ delay)
        )

    def _balance(self, big: frozenset) -> float:
        """1 minus the normalized row/column big-count deviation.

        Exactly 1.0 when every row and every column holds its fair share
        ``num_big / n`` (the diagonal-family signature); tends toward 0
        as the placement collapses into a few rows/columns.
        """
        n = self.mesh_size
        ideal = len(big) / n
        rows = [0] * n
        cols = [0] * n
        for p in big:
            rows[p // n] += 1
            cols[p % n] += 1
        deviation = sum(abs(c - ideal) for c in rows) + sum(
            abs(c - ideal) for c in cols
        )
        worst = 4.0 * len(big) * (n - 1) / n
        return max(0.0, 1.0 - deviation / worst)

    def worst_kills(self, positions: Iterable[int]) -> Tuple[int, ...]:
        """The ``kill_count`` most-loaded big routers (the targeted-kill
        adversary of the resilience study), deterministic under ties."""
        big = sorted(set(positions))
        ranked = sorted(big, key=lambda r: (-self.model.offered[r], r))
        return tuple(ranked[: self.kill_count])

    def kill_schedule(self, positions: Iterable[int], at: int = 0, **kwargs):
        """The worst-case kills as a :class:`repro.faults` schedule,
        ready to ride inside a refinement :class:`repro.exec.SweepPoint`."""
        from repro.faults import kill_routers

        return kill_routers(self.worst_kills(positions), at=at, **kwargs)

    def _resilience(self, big: frozenset) -> float:
        if not self.kill_count or not big:
            return 1.0
        survivors = big - set(self.worst_kills(big))
        _load, flow_cov, _covered = self._coverage(self._mask(survivors))
        return flow_cov

    def power_slack(self, num_big: int) -> float:
        """Headroom of ``P_base*N^2 >= P_small*n_s + P_big*n_b`` (signed)."""
        total = self.model.num_routers
        budget = TABLE1_POWER_W["baseline"] * total
        spent = (
            TABLE1_POWER_W["big"] * num_big
            + TABLE1_POWER_W["small"] * (total - num_big)
        )
        return (budget - spent) / budget

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, positions: Iterable[int]) -> PlacementObjectives:
        """Full objective vector for one placement (canonically cached)."""
        big = frozenset(positions)
        if not big:
            raise ValueError("placement must contain at least one big router")
        bad = [p for p in big if not 0 <= p < self.model.num_routers]
        if bad:
            raise ValueError(f"big positions outside the mesh: {sorted(bad)}")
        given = tuple(sorted(big))
        canon = canonical_placement(
            big, self.mesh_size, self.model.symmetry_maps
        )
        cached = self._cache.get(canon)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.evaluations += 1
        # Score the canonical representative: the objectives are provably
        # invariant under the model's symmetry_maps up to tie-breaking in
        # the resilience kill selection, and evaluating the representative
        # makes even those ties resolve identically across the orbit.
        big = frozenset(canon)
        mask = self._mask(big)
        load_cov, flow_cov, covered = self._coverage(mask)
        n = self.mesh_size
        rows = {p // n for p in big}
        cols = {p % n for p in big}
        spread = (len(rows) + len(cols)) / (2.0 * n)
        analytic = load_cov + 0.3 * flow_cov + 0.05 * spread
        fairness = self._fairness(covered)
        contention = self._contention(mask)
        balance = self._balance(big)
        resilience = self._resilience(big)
        power = self.power_slack(len(big))
        extras = {
            name: float(fn(big, self.model))
            for name, fn in self.extra_terms.items()
        }
        w = self.weights
        scalar = (
            w.analytic * analytic
            + w.fairness * fairness
            + w.contention * contention
            + w.balance * balance
            + w.resilience * resilience
            + w.power_slack * power
            + sum(w.extras.get(name, 0.0) * value for name, value in extras.items())
        )
        objectives = PlacementObjectives(
            positions=given,
            canonical=canon,
            load_coverage=load_cov,
            flow_coverage=flow_cov,
            spread=spread,
            analytic=analytic,
            fairness=fairness,
            contention=contention,
            balance=balance,
            resilience=resilience,
            power_slack=power,
            scalar=scalar,
            extras=extras,
        )
        self._cache[canon] = objectives
        return objectives

    def score(self, positions: Iterable[int]) -> float:
        """The scalarized objective (what the searches maximize)."""
        return self.evaluate(positions).scalar
