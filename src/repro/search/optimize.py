"""Metaheuristic searches over big-router placements.

Both searches walk the fixed-budget placement space (exactly ``num_big``
big routers) with moves that preserve the budget -- relocating one big
router to an empty seat -- so every visited state satisfies the paper's
router-count constraint by construction.  Everything is driven by one
seeded :class:`random.Random`, making a search a pure function of
``(evaluator, num_big, seed, knobs)``: the tests and the CI smoke job
pin exact outcomes.

Candidates canonicalize through the mesh's dihedral symmetries (see
:mod:`repro.search.canonical`) inside the evaluator's cache and the
top-k archive, so the eight reflections of one shape cost one
evaluation and occupy one archive slot.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.search.objectives import PlacementEvaluator, PlacementObjectives


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``best`` is the winning placement's objective record; ``top`` holds
    the k best *distinct canonical* placements (best first) -- the
    survivor pool the refinement stage cycle-simulates; ``history`` is
    the best-so-far scalar after each evaluation (for convergence
    plots); ``evaluations`` counts real evaluations, ``proposals`` all
    proposed candidates (the difference is the canonical-dedup save).
    """

    best: PlacementObjectives
    top: List[PlacementObjectives]
    history: List[float]
    evaluations: int
    proposals: int
    algorithm: str
    seed: int

    @property
    def best_placement(self) -> Tuple[int, ...]:
        return self.best.canonical


class _TopK:
    """Fixed-size archive of the best distinct canonical placements."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._records: Dict[Tuple[int, ...], PlacementObjectives] = {}

    def offer(self, record: PlacementObjectives) -> None:
        held = self._records.get(record.canonical)
        if held is None or record.scalar > held.scalar:
            self._records[record.canonical] = record
        if len(self._records) > 4 * self.k:
            self._prune()

    def _prune(self) -> None:
        for record in self.ranked()[self.k:]:
            del self._records[record.canonical]

    def ranked(self) -> List[PlacementObjectives]:
        return sorted(
            self._records.values(),
            key=lambda r: (-r.scalar, r.canonical),
        )

    def best(self) -> PlacementObjectives:
        return self.ranked()[0]

    def take(self) -> List[PlacementObjectives]:
        return self.ranked()[: self.k]


def _seed_placement(rng, num_routers: int, num_big: int) -> frozenset:
    return frozenset(rng.sample(range(num_routers), num_big))


def _relocate(rng, placement: frozenset, num_routers: int, k: int = 1) -> frozenset:
    """Relocate ``k`` big routers to random empty seats (budget-preserving)."""
    big = sorted(placement)
    empty = [r for r in range(num_routers) if r not in placement]
    k = min(k, len(big), len(empty))
    return (placement - set(rng.sample(big, k))) | set(rng.sample(empty, k))


def _exchange(rng, placement: frozenset, n: int) -> frozenset:
    """Swap the columns of two big routers, preserving row and column
    counts -- the move that navigates the balanced subspace the paper's
    "a big router in each row and column" rationale points at."""
    big = sorted(placement)
    for _attempt in range(16):
        a, b = rng.sample(big, 2)
        ra, ca = divmod(a, n)
        rb, cb = divmod(b, n)
        na, nb = ra * n + cb, rb * n + ca
        if na not in placement and nb not in placement:
            return (placement - {a, b}) | {na, nb}
    return _relocate(rng, placement, n * n, 1)


def _move(rng, placement: frozenset, num_routers: int, n: int) -> frozenset:
    """One proposal: mostly structure-preserving exchanges, mixed with
    single and double relocations so the walk can also change which rows
    and columns are occupied and hop between basins."""
    if len(placement) < 2:
        return _relocate(rng, placement, num_routers, 1)
    u = rng.random()
    if u < 0.45:
        return _exchange(rng, placement, n)
    if u < 0.80:
        return _relocate(rng, placement, num_routers, 1)
    return _relocate(rng, placement, num_routers, 2)


def _polish(
    evaluator: PlacementEvaluator,
    placement: frozenset,
    pair_limit: int = 20_000,
) -> frozenset:
    """Deterministic steepest-ascent to a local optimum.

    The neighborhood is every single relocation plus every
    column-exchange; when the pair-relocation neighborhood is small
    enough (``pair_limit`` candidates -- always true on 4x4) it is
    searched too, which lets the polish cross the two-move gaps that
    separate near-optimal attractors from the true optimum.  Ties break
    lexicographically, so the result is a pure function of the start.
    """
    import itertools as _it

    n = evaluator.mesh_size
    num_routers = evaluator.model.num_routers
    current = frozenset(placement)
    current_score = evaluator.evaluate(current).scalar
    improved = True
    while improved:
        improved = False
        big = sorted(current)
        empty = [r for r in range(num_routers) if r not in current]
        neighbors = [(current - {l}) | {a} for l in big for a in empty]
        for a, b in _it.combinations(big, 2):
            ra, ca = divmod(a, n)
            rb, cb = divmod(b, n)
            na, nb = ra * n + cb, rb * n + ca
            if na not in current and nb not in current:
                neighbors.append((current - {a, b}) | {na, nb})
        if (
            len(big) >= 2
            and len(empty) >= 2
            and math.comb(len(big), 2) * math.comb(len(empty), 2) <= pair_limit
        ):
            neighbors.extend(
                (current - set(pair)) | set(seats)
                for pair in _it.combinations(big, 2)
                for seats in _it.combinations(empty, 2)
            )
        best = max(
            neighbors,
            key=lambda p: (evaluator.evaluate(p).scalar, tuple(sorted(p))),
        )
        best_score = evaluator.evaluate(best).scalar
        if best_score > current_score + 1e-12:
            current, current_score, improved = best, best_score, True
    return current


def simulated_annealing(
    evaluator: PlacementEvaluator,
    num_big: int,
    seed: int = 0,
    steps: int = 2000,
    restarts: int = 3,
    t_initial: float = 0.03,
    t_final: float = 0.0005,
    top_k: int = 8,
    polish_top: int = 4,
    telemetry=None,
) -> SearchResult:
    """Seeded simulated annealing over fixed-budget placements.

    Runs ``restarts`` independent chains of ``steps`` proposals each from
    random seeds, with a geometric temperature schedule from
    ``t_initial`` to ``t_final`` (scales chosen for scalar objectives of
    order 1: early on a ~3% score loss is accepted readily, at the end
    the walk is effectively greedy).  The ``polish_top`` best archive
    entries then descend deterministically to their local optima (see
    :func:`_polish`); the returned archive is the best across all
    chains and polishes.

    ``telemetry`` (a :class:`repro.obs.manifest.SearchTrace`) receives a
    per-step ``(chain, step, temperature, current, best)`` record.  It is
    strictly read-only with respect to the search: no RNG access, so a
    traced run and an untraced run walk identical trajectories.
    """
    import random

    if num_big < 1 or num_big >= evaluator.model.num_routers:
        raise ValueError(
            f"num_big must be in [1, {evaluator.model.num_routers - 1}], "
            f"got {num_big}"
        )
    if steps < 1 or restarts < 1:
        raise ValueError("steps and restarts must be >= 1")
    rng = random.Random(seed)
    num_routers = evaluator.model.num_routers
    n = evaluator.mesh_size
    archive = _TopK(top_k)
    history: List[float] = []
    proposals = 0
    best_so_far = -math.inf
    cooling = (t_final / t_initial) ** (1.0 / max(steps - 1, 1))
    for _chain in range(restarts):
        current = _seed_placement(rng, num_routers, num_big)
        record = evaluator.evaluate(current)
        archive.offer(record)
        proposals += 1
        best_so_far = max(best_so_far, record.scalar)
        history.append(best_so_far)
        current_score = record.scalar
        temperature = t_initial
        for _step in range(steps):
            candidate = _move(rng, current, num_routers, n)
            proposals += 1
            cand_record = evaluator.evaluate(candidate)
            archive.offer(cand_record)
            delta = cand_record.scalar - current_score
            if delta >= 0 or rng.random() < math.exp(delta / temperature):
                current, current_score = candidate, cand_record.scalar
            best_so_far = max(best_so_far, cand_record.scalar)
            history.append(best_so_far)
            if telemetry is not None:
                telemetry.sa_step(
                    _chain, _step, temperature, current_score, best_so_far
                )
            temperature *= cooling
    for record in archive.take()[:polish_top]:
        polished = evaluator.evaluate(
            _polish(evaluator, frozenset(record.positions))
        )
        archive.offer(polished)
        best_so_far = max(best_so_far, polished.scalar)
        history.append(best_so_far)
    return SearchResult(
        best=archive.best(),
        top=archive.take(),
        history=history,
        evaluations=evaluator.evaluations,
        proposals=proposals,
        algorithm="annealing",
        seed=seed,
    )


def _crossover(rng, a: frozenset, b: frozenset, num_big: int) -> frozenset:
    """Budget-preserving recombination: keep the shared seats, fill the
    rest from the symmetric difference (uniformly, without replacement)."""
    shared = a & b
    pool = sorted(a ^ b)
    need = num_big - len(shared)
    return shared | frozenset(rng.sample(pool, need))


def evolutionary_search(
    evaluator: PlacementEvaluator,
    num_big: int,
    seed: int = 0,
    generations: int = 40,
    population: int = 24,
    elite: int = 4,
    mutation_rate: float = 0.35,
    top_k: int = 8,
    polish_top: int = 2,
    initial: Optional[Sequence[Iterable[int]]] = None,
    telemetry=None,
) -> SearchResult:
    """A small seeded (mu + lambda)-style evolutionary loop.

    Each generation keeps the ``elite`` best distinct members, breeds the
    rest by 2-tournament selection and budget-preserving crossover, and
    mutates offspring with probability ``mutation_rate`` (one mixed
    move: exchange or relocation).  The ``polish_top`` best archive
    entries get the same deterministic descent as the annealer.

    ``initial`` seeds the starting population (topped up with random
    placements if shorter than ``population``).  Passing another
    search's survivors makes this the recombination stage of a memetic
    pipeline: crossover between two near-optimal placements that agree
    on most seats repairs each other's defects -- coordinated multi-seat
    jumps that single-move walks essentially never make.

    ``telemetry`` (a :class:`repro.obs.manifest.SearchTrace`) receives a
    per-generation ``(generation, best, population_best)`` record; like
    the annealer's it never touches the RNG, so the trajectory is
    unchanged.
    """
    import random

    if num_big < 1 or num_big >= evaluator.model.num_routers:
        raise ValueError(
            f"num_big must be in [1, {evaluator.model.num_routers - 1}], "
            f"got {num_big}"
        )
    if population < 4 or not 0 < elite < population:
        raise ValueError("need population >= 4 and 0 < elite < population")
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    rng = random.Random(seed)
    num_routers = evaluator.model.num_routers
    n = evaluator.mesh_size
    archive = _TopK(top_k)
    history: List[float] = []
    proposals = 0
    best_so_far = -math.inf

    def remember(placement: frozenset) -> PlacementObjectives:
        nonlocal proposals, best_so_far
        record = evaluator.evaluate(placement)
        archive.offer(record)
        proposals += 1
        best_so_far = max(best_so_far, record.scalar)
        history.append(best_so_far)
        return record

    members: List[frozenset] = []
    for given in initial or ():
        member = frozenset(given)
        if len(member) != num_big:
            raise ValueError(
                f"initial placement {tuple(sorted(member))} has "
                f"{len(member)} big routers, expected {num_big}"
            )
        members.append(member)
    members = members[:population]
    while len(members) < population:
        members.append(_seed_placement(rng, num_routers, num_big))
    scored = [(remember(m), m) for m in members]
    for _generation in range(generations):
        scored.sort(key=lambda pair: (-pair[0].scalar, pair[0].canonical))
        survivors: List[frozenset] = []
        seen = set()
        for record, member in scored:
            if record.canonical in seen:
                continue
            seen.add(record.canonical)
            survivors.append(member)
            if len(survivors) == elite:
                break
        while len(survivors) < elite:  # population collapsed to clones
            survivors.append(_seed_placement(rng, num_routers, num_big))
        children = list(survivors)
        while len(children) < population:
            def pick() -> frozenset:
                a, b = rng.sample(range(len(scored)), 2)
                return scored[min(a, b)][1]  # scored is sorted: lower = fitter

            child = _crossover(rng, pick(), pick(), num_big)
            if rng.random() < mutation_rate:
                child = _move(rng, child, num_routers, n)
            children.append(child)
        scored = [(remember(m), m) for m in children]
        if telemetry is not None:
            telemetry.generation(
                _generation,
                best_so_far,
                max(record.scalar for record, _ in scored),
            )
    for record in archive.take()[:polish_top]:
        polished = evaluator.evaluate(
            _polish(evaluator, frozenset(record.positions))
        )
        archive.offer(polished)
        best_so_far = max(best_so_far, polished.scalar)
        history.append(best_so_far)
    return SearchResult(
        best=archive.best(),
        top=archive.take(),
        history=history,
        evaluations=evaluator.evaluations,
        proposals=proposals,
        algorithm="evolutionary",
        seed=seed,
    )


def exhaustive_search(
    evaluator: PlacementEvaluator,
    num_big: int,
    top_k: int = 8,
    limit: int = 200_000,
) -> SearchResult:
    """Evaluate every placement (small meshes only: the footnote-4 stage).

    Raises :class:`ValueError` when the space exceeds ``limit`` -- at
    which point the metaheuristics above are the tool.
    """
    count = math.comb(evaluator.model.num_routers, num_big)
    if count > limit:
        raise ValueError(
            f"C({evaluator.model.num_routers}, {num_big}) = {count:,} "
            f"placements exceed the exhaustive limit ({limit:,}); use "
            "simulated_annealing or evolutionary_search"
        )
    archive = _TopK(top_k)
    history: List[float] = []
    best_so_far = -math.inf
    proposals = 0
    for combo in itertools.combinations(range(evaluator.model.num_routers), num_big):
        record = evaluator.evaluate(frozenset(combo))
        archive.offer(record)
        proposals += 1
        best_so_far = max(best_so_far, record.scalar)
        history.append(best_so_far)
    return SearchResult(
        best=archive.best(),
        top=archive.take(),
        history=history,
        evaluations=evaluator.evaluations,
        proposals=proposals,
        algorithm="exhaustive",
        seed=0,
    )


def pareto_frontier(
    records: Sequence[PlacementObjectives],
    axes: Sequence[str] = ("analytic", "resilience"),
) -> List[PlacementObjectives]:
    """Non-dominated subset of ``records`` over the named axes (all
    maximized), deduplicated by canonical placement and sorted by the
    first axis descending.  ``axes`` may name any objective field or an
    extra term."""
    if not axes:
        raise ValueError("need at least one axis")
    unique: Dict[Tuple[int, ...], PlacementObjectives] = {}
    for record in records:
        held = unique.get(record.canonical)
        if held is None or record.scalar > held.scalar:
            unique[record.canonical] = record
    frontier: List[PlacementObjectives] = []
    candidates = sorted(
        unique.values(),
        key=lambda r: tuple(-v for v in r.vector(axes)) + (r.canonical,),
    )
    for record in candidates:
        vec = record.vector(axes)
        dominated = any(
            all(o >= v for o, v in zip(other.vector(axes), vec))
            and any(o > v for o, v in zip(other.vector(axes), vec))
            for other in frontier
        )
        if not dominated:
            frontier.append(record)
    return frontier
