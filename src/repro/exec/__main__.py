"""``python -m repro.exec`` -- the result-store CLI.

Delegates to :func:`repro.exec.store.main` (``info`` / ``quarantine`` /
``import``); preferred over ``python -m repro.exec.store``, which works
too but trips runpy's re-import warning because the package itself
imports the submodule.
"""

import sys

from repro.exec.store import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
