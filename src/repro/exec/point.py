"""Self-contained sweep-point specifications and their results.

A :class:`SweepPoint` captures *everything* one load-latency sample needs
-- network construction (layout or raw topology), traffic pattern,
injection process, offered rate, seed and measurement knobs -- as a
frozen, picklable value object.  Because the spec is self-contained, a
point can execute anywhere: in-process, in a worker of a
:class:`concurrent.futures.ProcessPoolExecutor`, or not at all when a
:class:`repro.exec.cache.ResultCache` already holds its result.

Determinism contract: :func:`execute_point` rewinds the global packet-id
counter before building the network, so the same spec produces the same
:class:`PointResult` -- bit for bit, packet ids included -- regardless of
what else the process simulated before, and therefore regardless of the
backend the engine used.  The golden-run tests pin this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

#: bump when the spec schema or simulator semantics change in a way that
#: invalidates previously cached results.
SPEC_VERSION = 1

_TOPOLOGIES = ("mesh", "torus", "cmesh", "fbfly")
_INJECTORS = ("bernoulli", "self_similar")


@dataclass(frozen=True)
class SweepPoint:
    """One independent sample of a load-latency sweep.

    Network selection (three mutually exclusive shapes):

    * ``layout`` -- a named paper configuration
      (:func:`repro.core.layouts.layout_by_name`) on a ``mesh`` or
      ``torus`` topology;
    * ``big_positions`` (with ``layout=None``) -- a custom heterogeneous
      placement (:func:`repro.core.layouts.custom_layout`);
    * ``topology`` in ``{"cmesh", "fbfly"}`` -- a homogeneous
      generic-router network on a concentrated topology (the Figure 2
      study), ignoring the layout machinery entirely.
    """

    layout: Optional[str] = "baseline"
    big_positions: Optional[Tuple[int, ...]] = None
    redistribute_links: bool = True
    mesh_size: int = 8
    topology: str = "mesh"
    concentration: int = 4
    flit_mode: str = "paper"
    flit_merging: Optional[bool] = None
    pattern: str = "uniform_random"
    injector: str = "bernoulli"
    rate: float = 0.05
    seed: int = 1
    warmup_packets: int = 200
    measure_packets: int = 2000
    drain_cycle_cap: int = 400_000
    #: optional :class:`repro.faults.schedule.FaultSchedule` (or its
    #: dict form); ``None`` -- the default -- is omitted from the spec
    #: serialization entirely, so fault-free specs hash exactly as they
    #: did before the fault subsystem existed (golden-run stability).
    faults: Optional[object] = None
    #: cycle-kernel override (``"event"``, ``"soa"``, ``"naive"`` or
    #: ``"c"``, the compiled kernel);
    #: ``None`` -- the default -- leaves the network's own selection
    #: (config / ``REPRO_KERNEL``) in force and is omitted from the spec
    #: serialization, so kernel-free specs hash exactly as before.  All
    #: kernels are bit-identical, so the override changes wall-clock
    #: only -- the golden suite pins this.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.topology not in _TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {_TOPOLOGIES}, got {self.topology!r}"
            )
        if self.injector not in _INJECTORS:
            raise ValueError(
                f"injector must be one of {_INJECTORS}, got {self.injector!r}"
            )
        if self.layout is not None and self.big_positions is not None:
            raise ValueError("give either a named layout or big_positions, not both")
        if self.topology in ("cmesh", "fbfly") and (
            self.big_positions is not None or self.layout not in (None, "baseline")
        ):
            raise ValueError(
                f"{self.topology} networks are homogeneous; layouts do not apply"
            )
        if self.big_positions is not None:
            positions = tuple(self.big_positions)
            non_int = [
                p for p in positions
                if not isinstance(p, int) or isinstance(p, bool)
            ]
            if non_int:
                raise ValueError(
                    f"big_positions must be plain ints, got {non_int!r}"
                )
            if len(set(positions)) != len(positions):
                raise ValueError(
                    f"duplicate big_positions: {sorted(positions)}"
                )
            bad = [p for p in positions if not 0 <= p < self.mesh_size**2]
            if bad:
                raise ValueError(
                    f"big_positions outside the {self.mesh_size}x"
                    f"{self.mesh_size} mesh: {sorted(bad)}"
                )
            # Canonical order so that equal placements hash equally.
            object.__setattr__(self, "big_positions", tuple(sorted(positions)))
        if self.kernel is not None:
            from repro.noc.config import NetworkConfig

            if self.kernel not in NetworkConfig.KERNELS:
                raise ValueError(
                    f"kernel must be one of {NetworkConfig.KERNELS} or None, "
                    f"got {self.kernel!r}"
                )
        if self.faults is not None:
            from repro.faults.schedule import FaultSchedule

            if isinstance(self.faults, dict):
                object.__setattr__(
                    self, "faults", FaultSchedule.from_dict(self.faults)
                )
            elif not isinstance(self.faults, FaultSchedule):
                raise TypeError(
                    "faults must be a FaultSchedule (or its dict form), "
                    f"got {type(self.faults).__name__}"
                )

    # -- identity -------------------------------------------------------------
    def spec_dict(self) -> Dict[str, object]:
        """The spec as a plain JSON-able dict (canonical field order).

        The ``faults`` key appears only when a schedule is set: absent
        and ``None`` must serialize identically or every pre-existing
        cache entry and golden payload would be invalidated.
        """
        spec = {f.name: getattr(self, f.name) for f in fields(self)}
        if spec["big_positions"] is not None:
            spec["big_positions"] = list(spec["big_positions"])
        if spec["faults"] is None:
            del spec["faults"]
        else:
            spec["faults"] = self.faults.to_dict()
        if spec["kernel"] is None:
            del spec["kernel"]
        return spec

    def key(self) -> str:
        """Content hash identifying this spec (stable across processes).

        Any field change -- rate, seed, measurement scale, placement --
        yields a different key; the cache layer uses it as the filename.
        """
        payload = {"version": SPEC_VERSION, "spec": self.spec_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        name = self.layout if self.layout is not None else (
            f"custom[{len(self.big_positions or ())}]"
        )
        if self.topology != "mesh":
            name = f"{name}@{self.topology}"
        return f"{name}/{self.pattern}@{self.rate:g}"

    # -- construction ---------------------------------------------------------
    def build_network(self):
        """Instantiate a fresh simulator network for this spec."""
        # Imports stay local so that a SweepPoint pickles cheaply and the
        # worker side pays the import cost once per process.
        from repro.noc.topology import (
            ConcentratedMesh,
            FlattenedButterfly,
            Mesh,
            Torus,
        )

        if self.topology in ("cmesh", "fbfly"):
            from repro.noc.config import RouterConfig
            from repro.noc.network import Network

            topo_cls = ConcentratedMesh if self.topology == "cmesh" else FlattenedButterfly
            topo = topo_cls(self.mesh_size, concentration=self.concentration)
            configs = {rid: RouterConfig() for rid in range(topo.num_routers)}
            return self._apply_kernel(Network(topo, configs))

        from repro.core.layouts import build_network, custom_layout, layout_by_name

        if self.layout is not None:
            layout = layout_by_name(self.layout, self.mesh_size)
        else:
            layout = custom_layout(
                f"custom-{len(self.big_positions)}",
                set(self.big_positions),
                mesh_size=self.mesh_size,
                redistribute_links=self.redistribute_links,
            )
        topology = (Torus if self.topology == "torus" else Mesh)(self.mesh_size)
        overrides = {}
        if self.flit_merging is not None:
            overrides["flit_merging"] = self.flit_merging
        return self._apply_kernel(build_network(
            layout, topology=topology, flit_mode=self.flit_mode, **overrides
        ))

    def _apply_kernel(self, network):
        if self.kernel is not None:
            network.use_kernel(self.kernel)
        return network

    def build_injector(self, num_nodes: int):
        """The injection process, or ``None`` for the Bernoulli default."""
        if self.injector == "self_similar":
            from repro.traffic.selfsimilar import SelfSimilarInjector

            return SelfSimilarInjector(num_nodes, self.rate, seed=self.seed)
        return None


@dataclass
class PointResult:
    """Everything a harness needs from one executed point.

    Deliberately *not* the live :class:`~repro.noc.network.Network` or
    :class:`~repro.noc.stats.NetworkStats`: results must cross process
    boundaries and round-trip through the JSON cache, so only plain
    scalars and lists appear here.  The integer checksums
    (``latency_sum_cycles``, ``hops_sum``, ``packet_id_sum``) exist for
    exact golden-run comparisons where float formatting would be lossy.
    """

    key: str
    label: str
    rate: float
    seed: int
    frequency_ghz: float
    latency_cycles: float
    latency_ns: float
    queuing_cycles: float
    blocking_cycles: float
    transfer_cycles: float
    avg_hops: float
    p95_latency_cycles: float
    p99_latency_cycles: float
    latency_sum_cycles: int
    hops_sum: int
    packet_id_sum: int
    throughput: float
    measured_packets: int
    total_cycles: int
    saturated: bool
    unfinished_measured_packets: int
    power_w: float
    power_breakdown: Dict[str, float]
    merge_fraction: float
    buffer_utilization: List[float]
    link_utilization: List[float]
    #: NI/fault-layer counters (``None`` for fault-free points, and then
    #: omitted from serialization so pre-fault cache entries and golden
    #: payloads stay byte-identical).
    resilience: Optional[Dict[str, int]] = None
    #: measured packets the NI declared lost (retries exhausted).
    lost_measured_packets: int = 0
    #: error string when the engine captured a failed execution instead
    #: of aborting the sweep; failed results are never cached.
    error: Optional[str] = None
    #: set by the engine when this result came from the disk cache rather
    #: than a simulation; never serialized.
    from_cache: bool = field(default=False, compare=False)

    #: fields tolerated absent in (and pruned from) serialized payloads,
    #: for compatibility with results written before they existed.
    _OPTIONAL_FIELDS = frozenset({"resilience", "lost_measured_packets", "error"})

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload.pop("from_cache")
        if payload["resilience"] is None:
            payload.pop("resilience")
        if payload["lost_measured_packets"] == 0:
            payload.pop("lost_measured_packets")
        if payload["error"] is None:
            payload.pop("error")
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PointResult":
        expected = {f.name for f in fields(cls)} - {"from_cache"}
        provided = set(payload)
        if provided - expected or (expected - provided) - cls._OPTIONAL_FIELDS:
            raise ValueError(
                f"result payload fields {sorted(provided)} do not match "
                f"{sorted(expected)}"
            )
        return cls(**payload)


def checkpoint_path_for(point: SweepPoint, checkpoint_dir) -> "pathlib.Path":
    """Where a point's auto-checkpoint lives (content-keyed, like the cache)."""
    import pathlib

    return pathlib.Path(checkpoint_dir) / f"{point.key()}.ckpt"


def execute_point(
    point: SweepPoint,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
) -> PointResult:
    """Run one sweep point and summarize it.

    This is the unit of work the engine ships to pool workers, so it must
    stay a module-level (picklable) function.

    With ``checkpoint_every`` and ``checkpoint_dir`` set, the run
    auto-checkpoints every N cycles to ``<dir>/<spec-key>.ckpt`` and, if
    such a checkpoint already exists (a previous attempt was killed or
    timed out mid-run), *resumes* from it instead of restarting at cycle
    0 -- with a result bit-identical to an uninterrupted run.  A corrupt,
    truncated or incompatible checkpoint is discarded and the point
    restarts from scratch; the checkpoint is removed once the point
    completes.
    """
    from repro.core.merging import merge_report
    from repro.core.power import network_power_breakdown
    from repro.noc.flit import reset_packet_ids
    from repro.noc.snapshot import SnapshotError, load_snapshot
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    checkpoint_path = None
    resume_snapshot = None
    if checkpoint_every is None or checkpoint_dir is None:
        checkpoint_every = None
    else:
        checkpoint_path = checkpoint_path_for(point, checkpoint_dir)
        checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            resume_snapshot = load_snapshot(checkpoint_path)
        except FileNotFoundError:
            pass
        except (SnapshotError, OSError):
            # Damaged checkpoint: recompute from cycle 0, never crash.
            resume_snapshot = None

    result = None
    if resume_snapshot is not None:
        network = resume_snapshot.network
        pattern = pattern_by_name(point.pattern, network.topology)
        try:
            result = run_synthetic(
                network,
                pattern,
                point.rate,
                warmup_packets=point.warmup_packets,
                measure_packets=point.measure_packets,
                seed=point.seed,
                injector=point.build_injector(network.topology.num_nodes),
                drain_cycle_cap=point.drain_cycle_cap,
                faults=point.faults,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=resume_snapshot,
            )
        except SnapshotError:
            # The checkpoint decoded but does not belong to this run
            # (format drift): fall through to a from-scratch execution.
            result = None
    if result is None:
        reset_packet_ids()
        network = point.build_network()
        pattern = pattern_by_name(point.pattern, network.topology)
        result = run_synthetic(
            network,
            pattern,
            point.rate,
            warmup_packets=point.warmup_packets,
            measure_packets=point.measure_packets,
            seed=point.seed,
            injector=point.build_injector(network.topology.num_nodes),
            drain_cycle_cap=point.drain_cycle_cap,
            faults=point.faults,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
    if checkpoint_path is not None:
        try:
            checkpoint_path.unlink()
        except OSError:
            pass
    stats = result.stats
    power = network_power_breakdown(network, stats)
    summary = stats.summary(network.config.frequency_ghz)
    records = stats.records
    num_ports = network.topology.num_ports
    return PointResult(
        key=point.key(),
        label=point.label,
        rate=point.rate,
        seed=point.seed,
        frequency_ghz=network.config.frequency_ghz,
        latency_cycles=summary["avg_latency_cycles"],
        latency_ns=summary["avg_latency_ns"],
        queuing_cycles=summary["avg_queuing_cycles"],
        blocking_cycles=summary["avg_blocking_cycles"],
        transfer_cycles=summary["avg_transfer_cycles"],
        avg_hops=summary["avg_hops"],
        p95_latency_cycles=summary["p95_latency_cycles"],
        p99_latency_cycles=summary["p99_latency_cycles"],
        latency_sum_cycles=sum(r.total for r in records),
        hops_sum=sum(r.hops for r in records),
        packet_id_sum=sum(r.packet_id for r in records),
        throughput=summary["throughput_packets_per_node_cycle"],
        measured_packets=len(records),
        total_cycles=result.total_cycles,
        saturated=result.saturated,
        unfinished_measured_packets=result.unfinished_measured_packets,
        power_w=power["total"],
        power_breakdown={k: float(v) for k, v in power.items()},
        merge_fraction=merge_report(network, stats).merge_fraction,
        buffer_utilization=[
            stats.buffer_utilization(rid) for rid in range(network.topology.num_routers)
        ],
        link_utilization=[
            stats.router_link_utilization(rid, num_ports(rid))
            for rid in range(network.topology.num_routers)
        ],
        resilience=dict(result.resilience) if point.faults is not None else None,
        lost_measured_packets=result.lost_measured_packets,
    )
