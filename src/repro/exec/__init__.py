"""Parallel sweep execution with deterministic result caching.

The package turns "run this list of independent simulations" into a
first-class operation:

* :class:`SweepPoint` -- a picklable, content-hashable spec of one run;
* :func:`execute_point` -- run one spec from scratch, deterministically
  (packet ids rewound per point);
* :func:`run_sweep` -- execute many specs through a ``serial`` or
  ``process`` backend, short-circuiting through a :class:`ResultCache`
  (loose JSON files) or a :class:`ResultStore` (crash-safe WAL-mode
  SQLite with a sweep journal and corrupt-row quarantine; selected by a
  ``.sqlite``/``.db`` cache path);
* :func:`configure` -- process-wide defaults (``--jobs``/``--no-cache``
  in ``run_all``, ``REPRO_JOBS``/``REPRO_SWEEP_CACHE`` in CI).

The contract the test suite pins: for a given spec, serial execution,
process execution and a cache hit -- on either backend -- all yield the
same :class:`PointResult`, bit for bit.
"""

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.engine import (
    ExecDefaults,
    PointTimeout,
    SweepCancelled,
    configure,
    run_sweep,
    sweep_points,
)
from repro.exec.point import (
    SPEC_VERSION,
    PointResult,
    SweepPoint,
    execute_point,
)
from repro.exec.store import ResultStore, open_result_backend

__all__ = [
    "SPEC_VERSION",
    "ExecDefaults",
    "PointResult",
    "PointTimeout",
    "ResultCache",
    "ResultStore",
    "SweepCancelled",
    "SweepPoint",
    "configure",
    "default_cache_dir",
    "execute_point",
    "open_result_backend",
    "run_sweep",
    "sweep_points",
]
