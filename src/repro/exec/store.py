"""Durable SQLite result store: the crash-safe sweep cache backend.

The loose-file :class:`~repro.exec.cache.ResultCache` keeps one JSON file
per point; this store keeps the same content-addressed payloads in a
single SQLite database and adds the durability features a long-running
sweep needs:

* **WAL mode, single-writer transactions** -- every ``put`` is one
  atomic transaction, so a SIGKILL at any instant leaves either the old
  row or the complete new one.  Readers (``get``) never block the
  writer and vice versa.
* **A sweep journal** -- :meth:`begin_sweep` records every point of a
  sweep as ``pending`` and :meth:`mark_committed` flips them to ``done``
  as results land, so an interrupted ``run_all --full`` can *report*
  exactly which points survive (``run_all --resume``) and resumes with
  zero recomputation of committed points.
* **Corrupt-row quarantine** -- a row that fails its sha256 checksum,
  schema version or spec match is moved to the ``quarantine`` table
  inside one transaction and the point recomputes; corruption is never
  an exception and never silently served.  Whole-file corruption (the
  database itself no longer parses) moves the file aside to
  ``<path>.corrupt`` and starts fresh.
* **Schema versioning** -- ``meta.schema_version`` is checked on every
  open; an unknown (newer) schema refuses loudly instead of guessing.

The store is selected wherever a cache path is accepted (``cache=`` in
:func:`repro.exec.engine.run_sweep`, ``REPRO_SWEEP_CACHE``) simply by
using a path with a ``.sqlite``/``.sqlite3``/``.db`` suffix; everything
else keeps the loose-file backend.  Results are byte-identical across
the two backends (pinned by the golden parity tests).

Migrate an existing loose-file cache with::

    python -m repro.exec.store sweeps.sqlite import ~/.cache/repro-heteronoc/sweeps
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sqlite3
import sys
import time
import warnings
from typing import Dict, List, Optional, Sequence, Union

from repro.exec.point import SPEC_VERSION, PointResult, SweepPoint

#: bump when the table layout changes; opening a database with a newer
#: schema than this build understands raises rather than corrupting it.
#: v1 -> v2 added the ``jobs`` table (the :mod:`repro.serve` priority
#: queue); the change is purely additive, so v1 files migrate in place.
STORE_SCHEMA_VERSION = 2

#: schema versions this build can upgrade in place on open.
_MIGRATABLE_VERSIONS = (1,)

#: path suffixes that select the SQLite store over the loose-file cache.
STORE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    version INTEGER NOT NULL,
    spec TEXT NOT NULL,
    result TEXT NOT NULL,
    checksum TEXT NOT NULL,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key TEXT,
    payload TEXT,
    reason TEXT NOT NULL,
    quarantined_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweep_journal (
    sweep_id TEXT NOT NULL,
    point_key TEXT NOT NULL,
    seq INTEGER NOT NULL,
    label TEXT NOT NULL,
    tag TEXT,
    status TEXT NOT NULL DEFAULT 'pending',
    committed_at TEXT,
    PRIMARY KEY (sweep_id, point_key)
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    state TEXT NOT NULL DEFAULT 'queued',
    priority INTEGER NOT NULL DEFAULT 0,
    tag TEXT,
    client TEXT,
    points TEXT NOT NULL,
    point_keys TEXT NOT NULL,
    submitted_at TEXT NOT NULL,
    started_at TEXT,
    finished_at TEXT,
    worker TEXT,
    error TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, priority DESC);
"""


class StoreSchemaError(RuntimeError):
    """The database carries a schema this build does not understand."""


def is_store_path(path: Union[str, pathlib.Path, None]) -> bool:
    """Whether a cache path selects the SQLite store backend."""
    if path is None:
        return False
    return pathlib.Path(path).suffix.lower() in STORE_SUFFIXES


def open_result_backend(path: Union[str, pathlib.Path]):
    """The result backend for ``path``: :class:`ResultStore` for
    ``.sqlite``/``.sqlite3``/``.db`` files, the loose-file
    :class:`~repro.exec.cache.ResultCache` for directories."""
    if is_store_path(path):
        return ResultStore(path)
    from repro.exec.cache import ResultCache

    return ResultCache(path)


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _checksum(version: int, spec_json: str, result_json: str) -> str:
    digest = hashlib.sha256()
    digest.update(str(version).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(spec_json.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(result_json.encode("utf-8"))
    return digest.hexdigest()


def sweep_id_for(
    points: Sequence[SweepPoint], tag: Optional[str] = None
) -> str:
    """Deterministic identity of a sweep: its tag plus its point keys in
    order.  A crashed sweep relaunched with the same points re-derives
    the same id and therefore the same journal rows."""
    digest = hashlib.sha256()
    digest.update((tag or "").encode("utf-8"))
    for point in points:
        digest.update(b"\x00")
        digest.update(point.key().encode("ascii"))
    return digest.hexdigest()


class ResultStore:
    """Content-addressed, crash-safe store of :class:`PointResult` rows.

    Duck-type compatible with :class:`~repro.exec.cache.ResultCache`
    (``get`` / ``put`` / ``__len__``), plus the journal and quarantine
    API.  Every method is defensive: database-level corruption recovers
    by moving the file aside, row-level corruption quarantines the row
    -- neither ever raises out of ``get``/``put``.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path).expanduser()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management ------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None:
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            # The file exists but is not (or no longer) a SQLite
            # database: move it aside and start a fresh one.
            self._quarantine_database("database file does not parse")
            self._conn = self._open()
        return self._conn

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        stored_version = None
        with conn:
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            else:
                stored_version = row[0]
            if (
                stored_version is not None
                and int(stored_version) in _MIGRATABLE_VERSIONS
            ):
                # Additive migration: executescript above already created
                # any table the old schema lacked, so upgrading is just
                # recording the new version (same transaction).
                conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(STORE_SCHEMA_VERSION),),
                )
                stored_version = STORE_SCHEMA_VERSION
        if (
            stored_version is not None
            and int(stored_version) != STORE_SCHEMA_VERSION
        ):
            conn.close()
            raise StoreSchemaError(
                f"{self.path} has store schema v{stored_version}, this "
                f"build understands v{STORE_SCHEMA_VERSION}"
            )
        return conn

    def _quarantine_database(self, reason: str) -> None:
        """Move a hopelessly corrupt database file aside and warn."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        target = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        # WAL sidecar files belong to the dead database.
        for suffix in ("-wal", "-shm"):
            try:
                pathlib.Path(f"{self.path}{suffix}").unlink()
            except OSError:
                pass
        warnings.warn(
            f"result store {self.path} is corrupt ({reason}); moved aside "
            f"to {target.name} and starting fresh",
            stacklevel=3,
        )

    def _recover(self, reason: str) -> None:
        self._quarantine_database(reason)
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            self._conn = None

    def connection(self) -> sqlite3.Connection:
        """The live SQLite connection (opening/recovering as needed).

        For layers that extend the store's schema with their own queries
        -- :class:`repro.serve.jobs.JobQueue` runs its claim/finish
        transactions through this.  The connection is bound to the thread
        that first uses this store instance; give each thread its own
        :class:`ResultStore` instead of sharing one.
        """
        return self._connect()

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the cache contract ---------------------------------------------------
    def get(self, point: SweepPoint) -> Optional[PointResult]:
        """The stored result for ``point``, or ``None`` on any miss.

        A row that fails validation -- checksum, schema version, spec
        match, JSON shape -- is moved to the quarantine table (one
        transaction) and reported as a miss, so the engine recomputes it.
        """
        if os.environ.get("REPRO_CHAOS_PLAN"):
            from repro.chaos.sites import chaos_site

            try:
                chaos_site("store.get")
            except (OSError, MemoryError) as exc:
                warnings.warn(f"result store read failed: {exc}")
                return None
        key = point.key()
        try:
            conn = self._connect()
            row = conn.execute(
                "SELECT version, spec, result, checksum FROM results "
                "WHERE key = ?",
                (key,),
            ).fetchone()
        except StoreSchemaError:
            raise
        except sqlite3.DatabaseError as exc:
            self._recover(f"read failed: {exc}")
            return None
        if row is None:
            return None
        version, spec_json, result_json, checksum = row
        try:
            if _checksum(version, spec_json, result_json) != checksum:
                raise ValueError("row checksum mismatch")
            if version != SPEC_VERSION:
                raise ValueError(f"spec version {version} != {SPEC_VERSION}")
            if json.loads(spec_json) != point.spec_dict():
                raise ValueError("stored spec does not match the point")
            return PointResult.from_dict(json.loads(result_json))
        except (ValueError, KeyError, TypeError) as exc:
            self.quarantine_row(key, str(exc))
            return None

    def put(self, point: SweepPoint, result: PointResult) -> None:
        """Commit ``result`` in one atomic transaction.

        Never raises: a failed write (disk full, injected chaos fault,
        concurrent corruption) is reported as a warning and the result
        simply stays uncached -- losing a cache write must never lose a
        computed result.
        """
        key = point.key()
        spec_json = json.dumps(point.spec_dict(), sort_keys=True)
        result_json = json.dumps(result.to_dict(), sort_keys=True)
        try:
            if os.environ.get("REPRO_CHAOS_PLAN"):
                from repro.chaos.sites import chaos_site

                chaos_site("store.put")
            conn = self._connect()
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(key, version, spec, result, checksum, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        SPEC_VERSION,
                        spec_json,
                        result_json,
                        _checksum(SPEC_VERSION, spec_json, result_json),
                        _now(),
                    ),
                )
        except StoreSchemaError:
            raise
        except (sqlite3.Error, OSError, MemoryError) as exc:
            warnings.warn(
                f"result store write failed for {point.label}: "
                f"{type(exc).__name__}: {exc}; result stays uncached"
            )

    def __len__(self) -> int:
        try:
            conn = self._connect()
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        except sqlite3.DatabaseError:
            return 0

    # -- quarantine -----------------------------------------------------------
    def quarantine_row(self, key: str, reason: str) -> None:
        """Move one results row into the quarantine table (atomic)."""
        try:
            conn = self._connect()
            with conn:
                row = conn.execute(
                    "SELECT version, spec, result, checksum FROM results "
                    "WHERE key = ?",
                    (key,),
                ).fetchone()
                if row is not None:
                    conn.execute(
                        "INSERT INTO quarantine "
                        "(key, payload, reason, quarantined_at) "
                        "VALUES (?, ?, ?, ?)",
                        (key, json.dumps(list(row)), reason, _now()),
                    )
                    conn.execute(
                        "DELETE FROM results WHERE key = ?", (key,)
                    )
        except sqlite3.DatabaseError as exc:
            self._recover(f"quarantine failed: {exc}")
        warnings.warn(
            f"result store row {key[:12]}... quarantined: {reason}; "
            "the point will recompute"
        )

    def quarantined(self) -> List[Dict[str, str]]:
        """The quarantine table: key, reason and timestamp per row."""
        try:
            conn = self._connect()
            rows = conn.execute(
                "SELECT key, reason, quarantined_at FROM quarantine "
                "ORDER BY quarantined_at, key"
            ).fetchall()
        except sqlite3.DatabaseError:
            return []
        return [
            {"key": key, "reason": reason, "quarantined_at": at}
            for key, reason, at in rows
        ]

    # -- sweep journal --------------------------------------------------------
    def begin_sweep(
        self, points: Sequence[SweepPoint], tag: Optional[str] = None
    ) -> Optional[str]:
        """Register a sweep's points as journal rows; returns the sweep id.

        Idempotent: rows already present (a resumed sweep) keep their
        status, so committed points stay committed across a crash.
        Journal failures degrade to ``None`` (no journal) rather than
        blocking the sweep -- the journal is bookkeeping, not the data.
        """
        sweep_id = sweep_id_for(points, tag)
        try:
            conn = self._connect()
            with conn:
                conn.executemany(
                    "INSERT OR IGNORE INTO sweep_journal "
                    "(sweep_id, point_key, seq, label, tag, status) "
                    "VALUES (?, ?, ?, ?, ?, 'pending')",
                    [
                        (sweep_id, point.key(), seq, point.label, tag)
                        for seq, point in enumerate(points)
                    ],
                )
        except sqlite3.DatabaseError as exc:
            self._recover(f"journal write failed: {exc}")
            return None
        return sweep_id

    def mark_committed(self, sweep_id: str, point: SweepPoint) -> None:
        """Flip one journal row to ``done`` (atomic with its own commit;
        the result row itself was committed by :meth:`put` just before)."""
        try:
            conn = self._connect()
            with conn:
                conn.execute(
                    "UPDATE sweep_journal SET status = 'done', "
                    "committed_at = ? "
                    "WHERE sweep_id = ? AND point_key = ? "
                    "AND status != 'done'",
                    (_now(), sweep_id, point.key()),
                )
        except sqlite3.DatabaseError as exc:
            self._recover(f"journal update failed: {exc}")

    def sweep_progress(self, sweep_id: str) -> Dict[str, int]:
        """Committed/pending counts for one sweep."""
        try:
            conn = self._connect()
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM sweep_journal "
                "WHERE sweep_id = ? GROUP BY status",
                (sweep_id,),
            ).fetchall()
        except sqlite3.DatabaseError:
            rows = []
        counts = dict(rows)
        done = counts.get("done", 0)
        total = sum(counts.values())
        return {"total": total, "committed": done, "pending": total - done}

    def journal_summary(self) -> List[Dict[str, object]]:
        """Per-sweep progress for every journalled sweep, grouped by tag.

        This is what ``run_all --resume`` prints before continuing: one
        row per (tag, sweep id) with total/committed/pending counts and
        the latest commit timestamp.
        """
        try:
            conn = self._connect()
            rows = conn.execute(
                "SELECT tag, sweep_id, COUNT(*), "
                "SUM(CASE WHEN status = 'done' THEN 1 ELSE 0 END), "
                "MAX(committed_at) "
                "FROM sweep_journal GROUP BY tag, sweep_id "
                "ORDER BY tag, sweep_id"
            ).fetchall()
        except sqlite3.DatabaseError:
            return []
        return [
            {
                "tag": tag,
                "sweep_id": sweep_id,
                "total": total,
                "committed": committed or 0,
                "pending": total - (committed or 0),
                "last_commit": last,
            }
            for tag, sweep_id, total, committed, last in rows
        ]

    def tag_progress(self) -> List[Dict[str, object]]:
        """Journal progress aggregated per sweep tag.

        One row per tag (``run_all`` tags sweeps with the harness name),
        summing committed/total across every journalled sweep carrying
        that tag -- the ``info`` CLI's per-figure progress report.
        """
        try:
            conn = self._connect()
            rows = conn.execute(
                "SELECT tag, COUNT(*), "
                "SUM(CASE WHEN status = 'done' THEN 1 ELSE 0 END) "
                "FROM sweep_journal GROUP BY tag ORDER BY tag"
            ).fetchall()
        except sqlite3.DatabaseError:
            return []
        return [
            {
                "tag": tag,
                "total": total,
                "committed": committed or 0,
                "pending": total - (committed or 0),
            }
            for tag, total, committed in rows
        ]

    def job_counts(self) -> Dict[str, int]:
        """Jobs-table row counts per state (empty when no jobs exist)."""
        try:
            conn = self._connect()
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        except sqlite3.DatabaseError:
            return {}
        return dict(rows)

    # -- migration ------------------------------------------------------------
    def import_cache(
        self, directory: Union[str, pathlib.Path]
    ) -> Dict[str, int]:
        """Import a loose-file :class:`ResultCache` directory.

        Every ``*.json`` entry that validates (filename matches the
        spec's content hash, payload parses as a result) becomes one
        store row; invalid files are counted and skipped, never fatal.
        Existing rows win -- the store may already hold fresher results.
        """
        directory = pathlib.Path(directory).expanduser()
        imported = skipped = existing = 0
        for path in sorted(directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                version = payload["version"]
                spec = payload["spec"]
                result = PointResult.from_dict(payload["result"])
                canonical = json.dumps(
                    {"version": version, "spec": spec},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
                if key != path.stem:
                    raise ValueError("filename does not match spec hash")
            except (OSError, ValueError, KeyError, TypeError) as exc:
                warnings.warn(f"skipping cache entry {path.name}: {exc}")
                skipped += 1
                continue
            spec_json = json.dumps(spec, sort_keys=True)
            result_json = json.dumps(result.to_dict(), sort_keys=True)
            conn = self._connect()
            with conn:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO results "
                    "(key, version, spec, result, checksum, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        version,
                        spec_json,
                        result_json,
                        _checksum(version, spec_json, result_json),
                        _now(),
                    ),
                )
            if cursor.rowcount:
                imported += 1
            else:
                existing += 1
        return {
            "imported": imported,
            "skipped": skipped,
            "existing": existing,
        }


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.exec.store`` -- inspect and migrate stores."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.store",
        description="Inspect a sweep result store or import a loose-file "
        "cache directory into it.",
    )
    parser.add_argument("store", help="path to the SQLite store "
                        "(created when missing)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="row counts and journal progress")
    sub.add_parser("quarantine", help="list quarantined rows")
    import_parser = sub.add_parser(
        "import", help="import a loose-file ResultCache directory"
    )
    import_parser.add_argument("cache_dir", help="directory of *.json "
                               "cache entries")
    args = parser.parse_args(argv)

    store = ResultStore(args.store)
    if args.command == "import":
        report = store.import_cache(args.cache_dir)
        print(
            f"imported {report['imported']} entries from {args.cache_dir} "
            f"({report['existing']} already present, "
            f"{report['skipped']} skipped)"
        )
        return 0
    if args.command == "quarantine":
        rows = store.quarantined()
        if not rows:
            print("quarantine is empty")
        for row in rows:
            print(
                f"{row['key']}  {row['quarantined_at']}  {row['reason']}"
            )
        return 0
    # info
    print(f"store: {store.path}")
    print(f"schema: v{STORE_SCHEMA_VERSION}")
    print(f"results: {len(store)}")
    print(f"quarantined: {len(store.quarantined())}")
    by_tag = store.tag_progress()
    if by_tag:
        print("progress by tag:")
        for row in by_tag:
            print(
                f"  {row['tag'] or '(untagged)'}  "
                f"{row['committed']}/{row['total']} committed, "
                f"{row['pending']} pending"
            )
    summary = store.journal_summary()
    if summary:
        print("sweeps:")
        for row in summary:
            print(
                f"  {row['tag'] or '(untagged)'}  "
                f"{row['sweep_id'][:12]}...  "
                f"{row['committed']}/{row['total']} committed, "
                f"{row['pending']} pending"
            )
    else:
        print("sweeps: none journalled")
    jobs = store.job_counts()
    if jobs:
        states = ", ".join(
            f"{count} {state}" for state, count in sorted(jobs.items())
        )
        print(f"jobs: {states}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
