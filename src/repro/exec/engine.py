"""The sweep-execution engine: fan sweep points out, cache what completes.

The experiment harnesses describe their work as lists of
:class:`~repro.exec.point.SweepPoint` specs and hand them to
:func:`run_sweep`, which returns one :class:`~repro.exec.point.PointResult`
per point *in input order*.  Three orthogonal choices:

* **backend** -- ``"serial"`` executes in-process (today's behaviour);
  ``"process"`` fans the cache misses out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Every point carries
  its own seed and builds its own network worker-side, and
  :func:`~repro.exec.point.execute_point` rewinds the packet-id counter
  first, so the two backends are bit-identical (the golden-run tests
  assert this).
* **cache** -- a :class:`~repro.exec.cache.ResultCache` (or a directory
  path) short-circuits already-computed points, so re-running ``run_all``
  or a crashed ``--full`` sweep resumes instead of recomputing.
* **progress** -- a callback receiving
  :class:`~repro.obs.profiler.Progress` heartbeats (phase ``"sweep"``)
  as points complete; :func:`repro.obs.profiler.make_progress_printer`
  plugs in directly.

Process-wide defaults come from :func:`configure` or the environment
(``REPRO_JOBS``, ``REPRO_SWEEP_CACHE``), so harnesses can stay ignorant
of parallelism while ``run_all --jobs N`` turns it on globally.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.point import PointResult, SweepPoint, execute_point
from repro.obs.profiler import Progress

_UNSET = object()


@dataclass
class ExecDefaults:
    """Process-wide defaults applied when :func:`run_sweep` callers omit
    the corresponding argument."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    progress: Optional[Callable[[Progress], None]] = None


def _defaults_from_env() -> ExecDefaults:
    jobs = 1
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = max(1, int(raw))
        except ValueError:
            jobs = 1
    return ExecDefaults(jobs=jobs, cache_dir=os.environ.get("REPRO_SWEEP_CACHE") or None)


_defaults = _defaults_from_env()


def configure(
    jobs: Optional[int] = None,
    cache_dir: object = _UNSET,
    progress: object = _UNSET,
) -> ExecDefaults:
    """Set engine-wide defaults; omitted arguments keep their value.

    ``cache_dir=None`` explicitly disables caching; a string/path enables
    it at that directory.  Returns the resulting defaults (also handy for
    tests to snapshot/restore).
    """
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _defaults.jobs = jobs
    if cache_dir is not _UNSET:
        _defaults.cache_dir = str(cache_dir) if cache_dir is not None else None
    if progress is not _UNSET:
        _defaults.progress = progress
    return _defaults


def _resolve_cache(cache: object) -> Optional[ResultCache]:
    if cache is _UNSET:
        if _defaults.cache_dir is None:
            return None
        return ResultCache(_defaults.cache_dir)
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache: Union[ResultCache, str, None, object] = _UNSET,
    progress: object = _UNSET,
) -> List[PointResult]:
    """Execute every point, returning results in input order.

    Args:
        points: the sweep, as self-contained specs.
        jobs: worker count; defaults to :func:`configure`'s value (or
            ``REPRO_JOBS``).  ``jobs > 1`` implies the process backend.
        backend: ``"serial"`` or ``"process"``; inferred from ``jobs``
            when omitted.
        cache: a :class:`ResultCache`, a directory path, or ``None`` to
            disable; defaults to the configured cache directory.
        progress: callback for :class:`Progress` heartbeats (one per
            completed point; ``done`` counts points, and cached hits are
            counted immediately).

    Cached results come back with ``from_cache=True`` and cost zero
    simulation cycles; everything else executes and is written back to
    the cache before returning.
    """
    points = list(points)
    jobs = jobs if jobs is not None else _defaults.jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend is None:
        backend = "process" if jobs > 1 else "serial"
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    resolved_cache = _resolve_cache(cache)
    heartbeat = _defaults.progress if progress is _UNSET else progress

    started = time.perf_counter()
    done = 0

    def _tick(point: SweepPoint) -> None:
        nonlocal done
        done += 1
        if heartbeat is not None:
            heartbeat(
                Progress(
                    phase="sweep",
                    cycle=0,
                    done=done,
                    target=len(points),
                    elapsed_s=time.perf_counter() - started,
                )
            )

    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    for index, point in enumerate(points):
        hit = resolved_cache.get(point) if resolved_cache is not None else None
        if hit is not None:
            hit.from_cache = True
            results[index] = hit
            _tick(point)
        else:
            pending.append(index)

    if backend == "serial" or len(pending) <= 1:
        for index in pending:
            result = execute_point(points[index])
            if resolved_cache is not None:
                resolved_cache.put(points[index], result)
            results[index] = result
            _tick(points[index])
    elif pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_point, points[index]): index
                for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                if resolved_cache is not None:
                    resolved_cache.put(points[index], result)
                results[index] = result
                _tick(points[index])
    return results  # type: ignore[return-value]


def sweep_points(
    layouts: Sequence[str],
    pattern: str,
    rates: Sequence[float],
    *,
    seed: int = 11,
    warmup_packets: int = 200,
    measure_packets: int = 2000,
    flit_mode: str = "paper",
    mesh_size: int = 8,
    topology: str = "mesh",
) -> List[SweepPoint]:
    """The common sweep shape: layouts x rates, one point each.

    Points are ordered layout-major (all rates of the first layout, then
    the next), which callers rely on to regroup results into per-layout
    curves.
    """
    return [
        SweepPoint(
            layout=layout,
            mesh_size=mesh_size,
            topology=topology,
            flit_mode=flit_mode,
            pattern=pattern,
            rate=rate,
            seed=seed,
            warmup_packets=warmup_packets,
            measure_packets=measure_packets,
        )
        for layout in layouts
        for rate in rates
    ]
