"""The sweep-execution engine: fan sweep points out, cache what completes.

The experiment harnesses describe their work as lists of
:class:`~repro.exec.point.SweepPoint` specs and hand them to
:func:`run_sweep`, which returns one :class:`~repro.exec.point.PointResult`
per point *in input order*.  Three orthogonal choices:

* **backend** -- ``"serial"`` executes in-process (today's behaviour);
  ``"process"`` fans the cache misses out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Every point carries
  its own seed and builds its own network worker-side, and
  :func:`~repro.exec.point.execute_point` rewinds the packet-id counter
  first, so the two backends are bit-identical (the golden-run tests
  assert this).
* **cache** -- a :class:`~repro.exec.cache.ResultCache` (or a directory
  path) short-circuits already-computed points, so re-running ``run_all``
  or a crashed ``--full`` sweep resumes instead of recomputing.
* **progress** -- a callback receiving
  :class:`~repro.obs.profiler.Progress` heartbeats (phase ``"sweep"``)
  as points complete; :func:`repro.obs.profiler.make_progress_printer`
  plugs in directly.

The ``cache`` argument accepts two durable backends, chosen by path: a
directory keeps the loose-file :class:`~repro.exec.cache.ResultCache`,
while a ``.sqlite``/``.sqlite3``/``.db`` path selects the crash-safe
:class:`~repro.exec.store.ResultStore` (WAL-mode SQLite with atomic
per-point commits, a sweep journal for ``run_all --resume`` and
corrupt-row quarantine).  With a store backend every sweep registers its
points in the journal and flips them to ``done`` as results commit.

Long points can additionally auto-checkpoint: ``checkpoint_every=N``
(plus a ``checkpoint_dir``) snapshots the live simulation every ``N``
cycles via :mod:`repro.noc.snapshot`, and a retried or re-run point
resumes bit-identically from its last checkpoint instead of cycle 0.

Process-wide defaults come from :func:`configure` or the environment
(``REPRO_JOBS``, ``REPRO_SWEEP_CACHE``, ``REPRO_CHECKPOINT_EVERY``,
``REPRO_CHECKPOINT_DIR``), so harnesses can stay ignorant of parallelism
while ``run_all --jobs N`` turns it on globally.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.point import PointResult, SweepPoint, execute_point
from repro.exec.store import ResultStore, is_store_path
from repro.obs.profiler import Progress

_UNSET = object()


class PointTimeout(RuntimeError):
    """A sweep point exceeded its per-point wall-clock budget."""


class SweepCancelled(RuntimeError):
    """A sweep was cancelled (via ``cancel_event``) before completing."""


def _execute_point_guarded(
    point: SweepPoint,
    timeout_s: Optional[float],
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> PointResult:
    """Run one point, optionally under a wall-clock alarm.

    Module-level so the process backend can pickle it.  The alarm uses
    ``SIGALRM`` where the platform has it (POSIX); elsewhere the timeout
    degrades to unenforced rather than failing.  ``execute_point`` is
    resolved through the module global at call time, so tests that
    monkeypatch it keep working through this wrapper (the checkpoint
    kwargs are only passed when checkpointing is actually on, for the
    same reason).

    Alarms nest correctly: the previous ``ITIMER_REAL`` (not just the
    previous handler) is saved before arming and re-armed with its
    remaining time afterwards, so a caller's outer deadline keeps
    counting down across a guarded inner call.
    """
    if os.environ.get("REPRO_CHAOS_KILL"):
        from repro.chaos.kill import maybe_kill_self

        maybe_kill_self(point)

    def _run() -> PointResult:
        if checkpoint_every is not None and checkpoint_dir is not None:
            return execute_point(
                point,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        return execute_point(point)

    if (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        # signal handlers can only be installed from the main thread; in
        # a worker thread (the repro.serve job server) the budget
        # degrades to unenforced, exactly like platforms without SIGALRM.
        and threading.current_thread() is threading.main_thread()
    ):

        def _alarm(signum, frame):
            raise PointTimeout(
                f"point {point.label} exceeded {timeout_s:g}s wall-clock budget"
            )

        previous = signal.signal(signal.SIGALRM, _alarm)
        outer_delay, outer_interval = signal.getitimer(signal.ITIMER_REAL)
        armed_at = time.monotonic()
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
        try:
            return _run()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
            if outer_delay > 0:
                # Re-arm the outer timer with whatever budget it has
                # left; if it expired while we ran, fire it (almost)
                # immediately under its own restored handler.
                remaining = outer_delay - (time.monotonic() - armed_at)
                signal.setitimer(
                    signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
                )
    return _run()


def _execute_point_timed(
    point: SweepPoint,
    timeout_s: Optional[float],
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> tuple:
    """Like :func:`_execute_point_guarded`, plus worker-side timing.

    Submitted *instead of* the plain runner only when sweep telemetry is
    active, so the telemetry-off path stays bit-for-bit the old code.
    Returns ``(result, info)`` where ``info`` carries the worker pid, the
    ``perf_counter`` at execution start (CLOCK_MONOTONIC on Linux, so the
    parent's submit timestamp is directly comparable), and the wall time
    spent simulating.
    """
    start_s = time.perf_counter()
    result = _execute_point_guarded(
        point, timeout_s, checkpoint_every, checkpoint_dir
    )
    return result, {
        "worker": os.getpid(),
        "start_s": start_s,
        "sim_s": time.perf_counter() - start_s,
    }


def _failed_result(point: SweepPoint, error: str) -> PointResult:
    """A placeholder result for a point whose execution failed.

    Metrics are NaN (so downstream plots show gaps rather than zeros),
    counters are zero, and :attr:`PointResult.error` carries the message.
    Failed results are never written to the cache.
    """
    nan = float("nan")
    return PointResult(
        key=point.key(),
        label=point.label,
        rate=point.rate,
        seed=point.seed,
        frequency_ghz=nan,
        latency_cycles=nan,
        latency_ns=nan,
        queuing_cycles=nan,
        blocking_cycles=nan,
        transfer_cycles=nan,
        avg_hops=nan,
        p95_latency_cycles=nan,
        p99_latency_cycles=nan,
        latency_sum_cycles=0,
        hops_sum=0,
        packet_id_sum=0,
        throughput=nan,
        measured_packets=0,
        total_cycles=0,
        saturated=False,
        unfinished_measured_packets=0,
        power_w=nan,
        power_breakdown={},
        merge_fraction=nan,
        buffer_utilization=[],
        link_utilization=[],
        error=error,
    )


@dataclass
class ExecDefaults:
    """Process-wide defaults applied when :func:`run_sweep` callers omit
    the corresponding argument."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    progress: Optional[Callable[[Progress], None]] = None
    #: a :class:`repro.obs.manifest.SweepTelemetry` (or anything with its
    #: ``record_point`` signature); ``None`` keeps the untimed fast path.
    telemetry: Optional[object] = None
    #: auto-checkpoint period in cycles; needs ``checkpoint_dir`` too.
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    #: journal tag recorded with each sweep on store backends, so
    #: ``run_all --resume`` can report progress per figure.
    sweep_tag: Optional[str] = None
    #: remote-submission hook: a callable ``(points, tag=...) -> results``
    #: (``repro.serve.client.install_submit`` wires one up).  When set,
    #: :func:`run_sweep` ships the whole sweep to it instead of executing
    #: locally -- the ``run_all --submit <url>`` path.
    submit: Optional[Callable] = None


def _defaults_from_env() -> ExecDefaults:
    jobs = 1
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = max(1, int(raw))
        except ValueError:
            jobs = 1
    checkpoint_every = None
    raw = os.environ.get("REPRO_CHECKPOINT_EVERY")
    if raw:
        try:
            checkpoint_every = max(1, int(raw))
        except ValueError:
            checkpoint_every = None
    return ExecDefaults(
        jobs=jobs,
        cache_dir=os.environ.get("REPRO_SWEEP_CACHE") or None,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=os.environ.get("REPRO_CHECKPOINT_DIR") or None,
    )


_defaults = _defaults_from_env()


def configure(
    jobs: Optional[int] = None,
    cache_dir: object = _UNSET,
    progress: object = _UNSET,
    telemetry: object = _UNSET,
    checkpoint_every: object = _UNSET,
    checkpoint_dir: object = _UNSET,
    sweep_tag: object = _UNSET,
    submit: object = _UNSET,
) -> ExecDefaults:
    """Set engine-wide defaults; omitted arguments keep their value.

    ``cache_dir=None`` explicitly disables caching; a string/path enables
    it at that location (directory = loose files, ``.sqlite`` = durable
    store).  Returns the resulting defaults (also handy for tests to
    snapshot/restore).
    """
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _defaults.jobs = jobs
    if cache_dir is not _UNSET:
        _defaults.cache_dir = str(cache_dir) if cache_dir is not None else None
    if progress is not _UNSET:
        _defaults.progress = progress
    if telemetry is not _UNSET:
        _defaults.telemetry = telemetry
    if checkpoint_every is not _UNSET:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        _defaults.checkpoint_every = checkpoint_every
    if checkpoint_dir is not _UNSET:
        _defaults.checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
    if sweep_tag is not _UNSET:
        _defaults.sweep_tag = sweep_tag
    if submit is not _UNSET:
        _defaults.submit = submit
    return _defaults


def _resolve_cache(cache: object) -> Union[ResultCache, ResultStore, None]:
    if cache is _UNSET:
        if _defaults.cache_dir is None:
            return None
        cache = _defaults.cache_dir
    if cache is None or isinstance(cache, (ResultCache, ResultStore)):
        return cache
    if is_store_path(cache):
        return ResultStore(cache)
    return ResultCache(cache)


def _cache_put(cache, point: SweepPoint, result: PointResult) -> None:
    """Write-back that never sinks a computed result.

    :class:`ResultStore` already absorbs its own failures; this guards
    the loose-file backend (and any duck-typed cache) the same way, so a
    full disk degrades to "uncached" instead of losing the sweep.
    """
    try:
        cache.put(point, result)
    except Exception as exc:
        warnings.warn(
            f"cache write failed for {point.label}: "
            f"{type(exc).__name__}: {exc}; result stays uncached"
        )


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache: Union[ResultCache, str, None, object] = _UNSET,
    progress: object = _UNSET,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.25,
    on_error: Optional[str] = None,
    telemetry: object = _UNSET,
    checkpoint_every: object = _UNSET,
    checkpoint_dir: object = _UNSET,
    cancel_event: Optional[object] = None,
    submit: object = _UNSET,
) -> List[PointResult]:
    """Execute every point, returning results in input order.

    Args:
        points: the sweep, as self-contained specs.
        jobs: worker count; defaults to :func:`configure`'s value (or
            ``REPRO_JOBS``).  ``jobs > 1`` implies the process backend.
        backend: ``"serial"`` or ``"process"``; inferred from ``jobs``
            when omitted.
        cache: a :class:`ResultCache`, a directory path, or ``None`` to
            disable; defaults to the configured cache directory.
        progress: callback for :class:`Progress` heartbeats (one per
            completed point; ``done`` counts points, and cached hits are
            counted immediately).
        timeout: per-point wall-clock budget in seconds, enforced with
            ``SIGALRM`` inside whichever process runs the point (worker
            or this one); ``None`` disables it.  On platforms without
            ``SIGALRM`` the budget is not enforced.
        retries: extra attempts per failing point (timeouts, crashes and
            dead pool workers included) before the failure is final.
        retry_backoff_s: sleep before retry attempt *n* is
            ``retry_backoff_s * 2**(n-1)`` seconds.
        on_error: what to do with a point whose attempts are exhausted --
            ``"raise"`` aborts the sweep (the first error propagates);
            ``"capture"`` records a placeholder :class:`PointResult` with
            NaN metrics and the error string in ``.error``, so one bad
            point cannot sink a long parallel sweep.  Defaults to
            ``"raise"`` on the serial backend and ``"capture"`` on the
            process backend.
        telemetry: a :class:`repro.obs.manifest.SweepTelemetry` receiving
            one structured span per point (queue wait, sim wall time,
            worker pid, cache hit, attempts, config digest); defaults to
            the configured telemetry, and ``None`` disables span
            recording entirely (the engine then submits the plain untimed
            runner -- the pre-telemetry code path, bit for bit).
        checkpoint_every: auto-checkpoint period in simulated cycles;
            with ``checkpoint_dir`` set, every executing point snapshots
            its full simulation state that often and resumes from the
            last snapshot on retry or re-run (bit-identically).  Both
            default to the configured values (``REPRO_CHECKPOINT_EVERY``
            / ``REPRO_CHECKPOINT_DIR``); either being ``None`` disables
            checkpointing.
        cancel_event: anything with an ``is_set()`` method (a
            ``threading.Event``); when it reports set, the sweep raises
            :class:`SweepCancelled` instead of starting the next point
            (serial backend) or the next retry round (process backend).
            Results already computed and cached stay cached, so a
            cancelled sweep resumed later recomputes nothing -- this is
            how the :mod:`repro.serve` job server aborts a running job.
        submit: remote-submission hook ``(points, tag=...) -> results``;
            defaults to the configured one (``configure(submit=...)``),
            ``None`` forces local execution.  When active, the *entire*
            sweep -- cache lookups included -- is delegated to the hook
            (a shared job server owns the store), and the results come
            back in input order, bit-identical to local serial execution.

    Cached results come back with ``from_cache=True`` and cost zero
    simulation cycles; everything else executes and is written back to
    the cache before returning.  Failed (captured) results are never
    cached, so a re-run retries them.

    On a :class:`ResultStore` backend the sweep additionally journals
    itself: every point is registered up front and marked committed as
    its result lands, so an interrupted sweep reports exact
    committed/pending counts and resumes with zero recomputation of
    committed points.
    """
    points = list(points)
    submit_hook = _defaults.submit if submit is _UNSET else submit
    if submit_hook is not None and points:
        results = submit_hook(points, tag=_defaults.sweep_tag)
        if len(results) != len(points):
            raise RuntimeError(
                f"submit hook returned {len(results)} results for "
                f"{len(points)} points"
            )
        heartbeat = _defaults.progress if progress is _UNSET else progress
        if heartbeat is not None:
            heartbeat(
                Progress(
                    phase="sweep",
                    cycle=0,
                    done=len(points),
                    target=len(points),
                    elapsed_s=0.0,
                )
            )
        return results
    jobs = jobs if jobs is not None else _defaults.jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend is None:
        backend = "process" if jobs > 1 else "serial"
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if on_error is None:
        on_error = "capture" if backend == "process" else "raise"
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    resolved_cache = _resolve_cache(cache)
    heartbeat = _defaults.progress if progress is _UNSET else progress
    spans = _defaults.telemetry if telemetry is _UNSET else telemetry
    ckpt_every = (
        _defaults.checkpoint_every
        if checkpoint_every is _UNSET
        else checkpoint_every
    )
    ckpt_dir = (
        _defaults.checkpoint_dir if checkpoint_dir is _UNSET else checkpoint_dir
    )
    if ckpt_every is None or ckpt_dir is None:
        ckpt_every = ckpt_dir = None
    else:
        os.makedirs(ckpt_dir, exist_ok=True)

    journal_id: Optional[str] = None
    if isinstance(resolved_cache, ResultStore) and points:
        journal_id = resolved_cache.begin_sweep(
            points, tag=_defaults.sweep_tag
        )

    started = time.perf_counter()
    done = 0

    def _tick(point: SweepPoint) -> None:
        nonlocal done
        done += 1
        if heartbeat is not None:
            heartbeat(
                Progress(
                    phase="sweep",
                    cycle=0,
                    done=done,
                    target=len(points),
                    elapsed_s=time.perf_counter() - started,
                )
            )

    def _finish(index: int, result: PointResult) -> None:
        if resolved_cache is not None and result.error is None:
            _cache_put(resolved_cache, points[index], result)
            if journal_id is not None:
                resolved_cache.mark_committed(journal_id, points[index])
        results[index] = result
        _tick(points[index])

    def _backoff(attempt: int) -> None:
        if retry_backoff_s > 0:
            time.sleep(retry_backoff_s * (2 ** (attempt - 1)))

    def _check_cancelled() -> None:
        if cancel_event is not None and cancel_event.is_set():
            raise SweepCancelled(
                f"sweep cancelled after {done}/{len(points)} points"
            )

    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    for index, point in enumerate(points):
        hit = resolved_cache.get(point) if resolved_cache is not None else None
        if hit is not None:
            hit.from_cache = True
            if journal_id is not None:
                resolved_cache.mark_committed(journal_id, point)
            if spans is not None:
                spans.record_point(
                    point,
                    queue_wait_s=0.0,
                    sim_s=0.0,
                    worker=os.getpid(),
                    cache_hit=True,
                    attempts=0,
                )
            results[index] = hit
            _tick(point)
        else:
            pending.append(index)

    if backend == "serial" or len(pending) <= 1:
        for index in pending:
            _check_cancelled()
            attempt = 0
            info = None
            error = None
            submit_s = 0.0
            while True:
                try:
                    if spans is None:
                        result = _execute_point_guarded(
                            points[index], timeout, ckpt_every, ckpt_dir
                        )
                    else:
                        submit_s = time.perf_counter()
                        result, info = _execute_point_timed(
                            points[index], timeout, ckpt_every, ckpt_dir
                        )
                    break
                except Exception as exc:
                    attempt += 1
                    if attempt <= retries:
                        _backoff(attempt)
                        continue
                    if on_error == "raise":
                        raise
                    error = f"{type(exc).__name__}: {exc}"
                    result = _failed_result(points[index], error)
                    break
            if spans is not None:
                if info is not None:
                    spans.record_point(
                        points[index],
                        queue_wait_s=info["start_s"] - submit_s,
                        sim_s=info["sim_s"],
                        worker=info["worker"],
                        start_s=info["start_s"],
                        attempts=attempt + 1,
                    )
                else:
                    spans.record_point(
                        points[index],
                        queue_wait_s=0.0,
                        sim_s=0.0,
                        worker=os.getpid(),
                        attempts=attempt,
                        error=error,
                    )
            _finish(index, result)
    elif pending:
        # Failures (worker exceptions, timeouts, even a worker process
        # dying and breaking the whole pool) are retried for `retries`
        # rounds; the pool is rebuilt each round so a poisoned worker
        # cannot take the rest of the sweep down with it.
        remaining = pending
        round_no = 0
        attempts_so_far: Dict[int, int] = {}
        while remaining:
            _check_cancelled()
            errors: Dict[int, str] = {}
            failed: List[int] = []
            workers = min(jobs, len(remaining))
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                if spans is None:
                    futures = {
                        pool.submit(
                            _execute_point_guarded,
                            points[index],
                            timeout,
                            ckpt_every,
                            ckpt_dir,
                        ): index
                        for index in remaining
                    }
                    submit_times = None
                else:
                    futures = {}
                    submit_times = {}
                    for index in remaining:
                        attempts_so_far[index] = (
                            attempts_so_far.get(index, 0) + 1
                        )
                        submit_times[index] = time.perf_counter()
                        futures[
                            pool.submit(
                                _execute_point_timed,
                                points[index],
                                timeout,
                                ckpt_every,
                                ckpt_dir,
                            )
                        ] = index
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        failed.append(index)
                        errors[index] = "worker process died (BrokenProcessPool)"
                        continue
                    except Exception as exc:
                        failed.append(index)
                        errors[index] = f"{type(exc).__name__}: {exc}"
                        continue
                    if spans is not None:
                        result, info = result
                        spans.record_point(
                            points[index],
                            queue_wait_s=(
                                info["start_s"] - submit_times[index]
                            ),
                            sim_s=info["sim_s"],
                            worker=info["worker"],
                            start_s=info["start_s"],
                            attempts=attempts_so_far[index],
                        )
                    _finish(index, result)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if not failed:
                break
            failed.sort()
            round_no += 1
            if round_no <= retries:
                _backoff(round_no)
                remaining = failed
                continue
            if on_error == "raise":
                first = failed[0]
                raise RuntimeError(
                    f"sweep point {points[first].label} failed after "
                    f"{round_no} attempt(s): {errors[first]}"
                )
            for index in failed:
                if spans is not None:
                    spans.record_point(
                        points[index],
                        queue_wait_s=0.0,
                        sim_s=0.0,
                        worker=os.getpid(),
                        attempts=attempts_so_far.get(index, round_no),
                        error=errors[index],
                    )
                _finish(index, _failed_result(points[index], errors[index]))
            break
    return results  # type: ignore[return-value]


def sweep_points(
    layouts: Sequence[str],
    pattern: str,
    rates: Sequence[float],
    *,
    seed: int = 11,
    warmup_packets: int = 200,
    measure_packets: int = 2000,
    flit_mode: str = "paper",
    mesh_size: int = 8,
    topology: str = "mesh",
) -> List[SweepPoint]:
    """The common sweep shape: layouts x rates, one point each.

    Points are ordered layout-major (all rates of the first layout, then
    the next), which callers rely on to regroup results into per-layout
    curves.
    """
    return [
        SweepPoint(
            layout=layout,
            mesh_size=mesh_size,
            topology=topology,
            flit_mode=flit_mode,
            pattern=pattern,
            rate=rate,
            seed=seed,
            warmup_packets=warmup_packets,
            measure_packets=measure_packets,
        )
        for layout in layouts
        for rate in rates
    ]
