"""Disk cache for completed sweep-point results.

One JSON file per point, named by the spec's content hash
(:meth:`repro.exec.point.SweepPoint.key`), holding the spec it was
computed from, the result payload and a version tag.  Because the key
covers every spec field, changing *anything* -- rate, seed, layout,
measurement scale -- selects a different file; stale entries are simply
never read again.

Robustness contract (pinned by tests): a missing, truncated, corrupt or
version-mismatched entry is treated as a miss -- the offending file is
discarded and the point recomputes -- never an exception.  Writes go
through a temporary file and :func:`os.replace` so a crashed run leaves
either the old entry or a complete new one, which is what lets an
interrupted ``run_all --full`` resume instead of recomputing.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional, Union

from repro.exec.point import SPEC_VERSION, PointResult, SweepPoint


def default_cache_dir() -> pathlib.Path:
    """Where sweep results live unless the caller says otherwise.

    ``REPRO_SWEEP_CACHE`` overrides; the fallback follows the XDG cache
    convention.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return pathlib.Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join("~", ".cache")
    return pathlib.Path(base).expanduser() / "repro-heteronoc" / "sweeps"


class ResultCache:
    """Content-addressed store of :class:`PointResult` payloads."""

    def __init__(self, directory: Union[str, pathlib.Path, None] = None) -> None:
        self.directory = (
            pathlib.Path(directory).expanduser()
            if directory is not None
            else default_cache_dir()
        )

    def path_for(self, point: SweepPoint) -> pathlib.Path:
        return self.directory / f"{point.key()}.json"

    def get(self, point: SweepPoint) -> Optional[PointResult]:
        """The cached result for ``point``, or ``None`` on any miss."""
        path = self.path_for(point)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self._discard(path)
            return None
        try:
            payload = json.loads(raw)
            if payload["version"] != SPEC_VERSION:
                raise ValueError("cache version mismatch")
            if payload["spec"] != point.spec_dict():
                # Hash collision or a hand-edited file: distrust it.
                raise ValueError("cached spec does not match")
            return PointResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self._discard(path)
            return None

    def put(self, point: SweepPoint, result: PointResult) -> pathlib.Path:
        """Persist ``result`` atomically; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(point)
        payload = {
            "version": SPEC_VERSION,
            "spec": point.spec_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def _discard(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0
